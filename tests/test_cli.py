"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main, parse_gpu_spec, parse_graph_spec
from repro.graphs import kronecker, save_npz, write_dimacs_gr, write_edge_list


class TestGraphSpecParser:
    def test_kron(self):
        g = parse_graph_spec("kron:8,4")
        assert g.num_vertices == 256

    def test_kron_default_edgefactor(self):
        g = parse_graph_spec("kron:7")
        assert g.num_vertices == 128

    def test_road(self):
        g = parse_graph_spec("road:8,6")
        assert g.num_vertices == 48

    def test_road_square_default(self):
        g = parse_graph_spec("road:8")
        assert g.num_vertices == 64

    def test_pa_and_er(self):
        assert parse_graph_spec("pa:100,3").num_vertices == 100
        assert parse_graph_spec("er:50,200").num_vertices == 50

    def test_dataset_name(self):
        g = parse_graph_spec("Amazon")
        assert g.name == "Amazon"

    def test_unknown_kind(self):
        with pytest.raises(SystemExit):
            parse_graph_spec("torus:3")

    def test_missing_file(self):
        with pytest.raises(SystemExit):
            parse_graph_spec("does/not/exist.txt")

    def test_file_loading(self, tmp_path):
        g = kronecker(5, 3, seed=1)
        npz = tmp_path / "g.npz"
        save_npz(g, npz)
        assert parse_graph_spec(str(npz)).num_edges == g.num_edges
        gr = tmp_path / "g.gr"
        write_dimacs_gr(g, gr)
        assert parse_graph_spec(str(gr)).num_edges == g.num_edges
        txt = tmp_path / "g.txt"
        write_edge_list(g, txt)
        loaded = parse_graph_spec(str(txt))
        # edge-list files don't record isolated trailing vertices, so
        # compare the edge set size (the CLI reader symmetrizes, but the
        # file is already symmetric so dedup collapses it back)
        assert loaded.num_edges == g.num_edges

    def test_seed_changes_graph(self):
        a = parse_graph_spec("kron:7,4", seed=1)
        b = parse_graph_spec("kron:7,4", seed=2)
        assert not np.array_equal(a.adj, b.adj)


class TestGpuSpecParser:
    def test_known(self):
        s = parse_gpu_spec("t4", 1 / 64)
        assert s.num_sms == 40

    def test_unknown(self):
        with pytest.raises(SystemExit):
            parse_gpu_spec("h100", 1.0)


class TestCommands:
    def test_solve(self, capsys):
        assert main(["solve", "kron:8,4", "--method", "rdbs"]) == 0
        out = capsys.readouterr().out
        assert "validated against scipy" in out
        assert "GTEPS" in out

    def test_solve_explicit_source(self, capsys):
        assert main(["solve", "road:6,6", "--source", "0"]) == 0
        assert "source    : 0" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(["compare", "kron:8,4", "--methods", "bl,rdbs"]) == 0
        out = capsys.readouterr().out
        assert "bl" in out and "rdbs" in out

    def test_compare_unknown_method(self):
        with pytest.raises(SystemExit):
            main(["compare", "kron:6,4", "--methods", "warp-drive"])

    def test_profile(self, capsys):
        assert main(["profile", "kron:8,4", "--method", "rdbs"]) == 0
        out = capsys.readouterr().out
        assert "timeline" in out and "bottlenecks" in out
        assert "per-primitive host time" in out

    def test_profile_json_schema(self, tmp_path, capsys):
        """The --json report's per-primitive breakdown: one entry per
        primitive family with accumulated seconds and call counts."""
        import json

        path = tmp_path / "prof.json"
        assert main(["profile", "kron:8,4", "--method", "rdbs",
                     "--json", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert {"graph", "method", "time_ms", "primitives",
                "regions", "total_seconds"} <= set(doc)
        assert doc["method"] == "rdbs"
        prims = doc["primitives"]
        # rdbs exercises all three primitive families
        assert {"sort", "scan", "multisplit"} <= set(prims)
        for name, row in prims.items():
            assert set(row) == {"seconds", "calls"}
            assert row["seconds"] >= 0 and row["calls"] >= 1
            # the breakdown mirrors the raw region table
            assert doc["regions"][f"primitive:{name}"]["calls"] \
                == row["calls"]
        out = capsys.readouterr().out
        assert "multisplit" in out

    def test_profile_cpu_method_rejected(self):
        with pytest.raises(SystemExit, match="timeline"):
            main(["profile", "kron:6,4", "--method", "dijkstra"])

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "road-TX" in out and "stands in for" in out

    def test_list_methods(self, capsys):
        assert main(["--list-methods"]) == 0
        assert "rdbs" in capsys.readouterr().out

    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out

    def test_delta_override(self, capsys):
        assert main(["solve", "kron:7,4", "--delta", "500"]) == 0

    def test_no_validate(self, capsys):
        assert main(["solve", "kron:7,4", "--no-validate"]) == 0
        assert "validated" not in capsys.readouterr().out

    def test_parser_builds(self):
        assert build_parser().prog == "repro"

    def test_sanitize_json_format(self, capsys):
        import json

        assert main([
            "sanitize", "kron:7,4", "--method", "rdbs", "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["method"] == "rdbs"
        assert payload["kernels_checked"] > 0
        assert payload["errors"] == 0
        assert isinstance(payload["findings"], list)

    def test_sanitize_json_includes_warnings_when_asked(self, capsys):
        import json

        assert main([
            "sanitize", "kron:7,4", "--method", "rdbs", "--format", "json",
            "--warnings",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["findings"]) >= payload["errors"]


class TestBench:
    @pytest.fixture()
    def tiny_quick_suite(self, monkeypatch):
        """Shrink the quick suite to one cheap cell for CLI round trips."""
        from repro.bench import suites

        monkeypatch.setitem(
            suites.SUITES,
            "quick",
            suites.SuiteSpec(
                name="quick",
                datasets=("Amazon",),
                methods=("rdbs",),
                num_sources=1,
            ),
        )

    def test_bench_run_writes_trajectory(
        self, tmp_path, tiny_quick_suite, capsys
    ):
        out = tmp_path / "BENCH_quick.json"
        assert main(["bench", "run", "--suite", "quick",
                     "--out", str(out)]) == 0
        from repro.bench import load_trajectory

        meta, records = load_trajectory(out)
        assert meta["suite"] == "quick"
        assert [r.key[:2] for r in records] == [("Amazon", "rdbs")]
        assert "wrote 1 record(s)" in capsys.readouterr().out

    def test_bench_check_round_trip_and_regression(
        self, tmp_path, tiny_quick_suite, capsys
    ):
        import json

        out = tmp_path / "BENCH_quick.json"
        assert main(["bench", "run", "--suite", "quick",
                     "--out", str(out)]) == 0
        # unchanged tree: re-running the suite matches the baseline exactly
        assert main(["bench", "check", "--baseline", str(out),
                     "--no-wall"]) == 0
        assert "clean against baseline" in capsys.readouterr().out
        # perturb one deterministic cell -> the gate must fail
        doc = json.loads(out.read_text())
        doc["records"][0]["counters"]["inst_executed_atomics"] += 1
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(doc))
        assert main(["bench", "check", "--baseline", str(out),
                     "--current", str(bad)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_bench_check_rejects_schema_mismatch(self, tmp_path):
        import json

        bad = tmp_path / "old.json"
        bad.write_text(json.dumps({"schema_version": 999, "records": []}))
        with pytest.raises(SystemExit, match="schema_version"):
            main(["bench", "check", "--baseline", str(bad)])

    def test_bench_diff(self, tmp_path, capsys):
        from repro.bench import BenchRecord, write_trajectory

        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        write_trajectory(
            a, [BenchRecord("g", "rdbs", time_ms=1.0)], suite="t"
        )
        write_trajectory(
            b, [BenchRecord("g", "rdbs", time_ms=2.0)], suite="t"
        )
        assert main(["bench", "diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "bench diff" in out
        assert "DRIFT" in out


class TestSelfcheck:
    def test_selfcheck_passes(self, capsys):
        assert main(["selfcheck"]) == 0
        out = capsys.readouterr().out
        assert "validated against scipy" in out
        assert "rdbs" in out and "pq-delta*" in out
