"""The serving layer: workload determinism, answer policy, LRU, gating.

The contracts under test are the ones CI's serve job stands on:

* the query stream and the whole traffic session are pure functions of
  ``(graph, ServeConfig)`` — same seed ⇒ byte-identical trajectory JSON,
  serial or parallel, cold or warm cache;
* every oracle answer is within the declared relative tolerance of the
  exact distance (the ALT bracket *certifies* the bound, it does not
  estimate it);
* the distance-field LRU respects its byte cap and evicts in strict
  least-recently-used order;
* a fault-plan session on the self-healing runtime ends with zero
  escaped faults and zero wrong answers.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bench.trajectory import suite_document
from repro.serve import (
    DistanceFieldLRU,
    ServeConfig,
    certified_answer,
    generate_queries,
    serve_traffic,
    warm_oracle,
)
from repro.serve.bench import (
    SERVE_SUITES,
    run_serve_cell,
    run_serve_suite,
    serve_suite_names,
)
from repro.serve.workload import NO_TARGET
from repro.sssp.validate import scipy_distances

# one small session exercising every answer path, reused across tests
SMALL = ServeConfig(
    num_queries=60, seed=5, p2p_fraction=0.7, tolerance=0.3,
    source_pool=5, cold_fraction=0.3, landmarks=3, shards=2,
)


# ---------------------------------------------------------------------------
# workload
# ---------------------------------------------------------------------------

class TestWorkload:
    def test_deterministic(self, small_kron):
        a = generate_queries(small_kron, SMALL)
        b = generate_queries(small_kron, SMALL)
        assert a == b

    def test_seed_changes_stream(self, small_kron):
        a = generate_queries(small_kron, SMALL)
        b = generate_queries(small_kron, SMALL.with_seed_offset(1))
        assert a != b

    def test_arrivals_increase(self, small_kron):
        qs = generate_queries(small_kron, SMALL)
        times = [q.t_ms for q in qs]
        assert times == sorted(times)
        assert times[0] > 0

    def test_query_kinds(self, small_kron):
        qs = generate_queries(small_kron, SMALL)
        p2p = [q for q in qs if q.is_p2p]
        full = [q for q in qs if not q.is_p2p]
        assert len(p2p) + len(full) == SMALL.num_queries
        assert p2p and full
        assert all(q.target == NO_TARGET for q in full)

    def test_hot_pool_bounded(self, small_kron):
        cfg = ServeConfig(num_queries=200, seed=1, source_pool=4,
                          cold_fraction=0.0)
        qs = generate_queries(small_kron, cfg)
        assert len({q.source for q in qs}) <= 4

    def test_cold_sources_escape_pool(self, small_kron):
        cfg = ServeConfig(num_queries=200, seed=1, source_pool=4,
                          cold_fraction=0.5)
        qs = generate_queries(small_kron, cfg)
        assert len({q.source for q in qs}) > 4

    def test_rejects_bad_config(self, small_kron):
        with pytest.raises(ValueError):
            generate_queries(small_kron, ServeConfig(num_queries=0))
        with pytest.raises(ValueError):
            generate_queries(small_kron, ServeConfig(p2p_fraction=1.5))
        with pytest.raises(ValueError):
            generate_queries(small_kron, ServeConfig(rate_qpms=0.0))


# ---------------------------------------------------------------------------
# landmark oracle: every answer provably within tolerance
# ---------------------------------------------------------------------------

class TestOracle:
    def test_certified_answers_within_tolerance(self, small_road):
        warm = warm_oracle(small_road, ServeConfig(landmarks=6, seed=0))
        tol = 0.25
        rng = np.random.default_rng(3)
        exact_cache: dict[int, np.ndarray] = {}
        answered = 0
        for _ in range(300):
            u = int(rng.integers(small_road.num_vertices))
            v = int(rng.integers(small_road.num_vertices))
            ans = certified_answer(warm.oracle, u, v, tol)
            if ans is None:
                continue
            answered += 1
            if u not in exact_cache:
                exact_cache[u] = scipy_distances(small_road, u)
            exact = float(exact_cache[u][v])
            assert ans == pytest.approx(exact, rel=tol, abs=1e-9)
        assert answered > 0  # the policy must actually fire on a road grid

    def test_identity_and_unreachable(self, small_kron):
        warm = warm_oracle(small_kron, ServeConfig(landmarks=2, seed=0))
        assert certified_answer(warm.oracle, 7, 7, 0.1) == 0.0
        # a vertex outside the landmark fields' reach -> no upper bound
        iso = int(np.argmax(~np.isfinite(warm.oracle.dist_matrix[0])))
        if not np.isfinite(warm.oracle.dist_matrix[:, iso]).any():
            assert certified_answer(warm.oracle, 0, iso, 0.5) is None

    def test_warm_oracle_artifact_roundtrip(self, small_kron):
        cfg = ServeConfig(landmarks=3, seed=9)
        cold = warm_oracle(small_kron, cfg)
        warm = warm_oracle(small_kron, cfg)
        assert not cold.artifact_hit
        assert warm.artifact_hit
        # the bundle must replay identically, times included — otherwise
        # warmup_ms would depend on the cache state
        assert warm.warmup_ms == cold.warmup_ms
        np.testing.assert_array_equal(
            warm.oracle.dist_matrix, cold.oracle.dist_matrix
        )


# ---------------------------------------------------------------------------
# distance-field LRU
# ---------------------------------------------------------------------------

class TestLRU:
    def field(self, n=128, fill=1.0):
        return np.full(n, fill)

    def test_byte_cap_respected(self):
        f = self.field()
        lru = DistanceFieldLRU(max_bytes=3 * f.nbytes)
        for s in range(10):
            lru.put(s, self.field(fill=s))
            assert lru.bytes <= lru.max_bytes
        assert len(lru) == 3
        assert lru.evictions == 7

    def test_eviction_is_lru_order(self):
        f = self.field()
        lru = DistanceFieldLRU(max_bytes=3 * f.nbytes)
        for s in (0, 1, 2):
            lru.put(s, self.field(fill=s))
        assert lru.get(0) is not None  # 0 becomes most-recent
        lru.put(3, self.field(fill=3))  # evicts 1, the LRU entry
        assert lru.sources() == [2, 0, 3]
        assert lru.get(1) is None

    def test_oversized_field_rejected(self):
        f = self.field(1024)
        lru = DistanceFieldLRU(max_bytes=f.nbytes - 1)
        lru.put(0, f)
        assert len(lru) == 0
        assert lru.rejected == 1
        assert lru.evictions == 0

    def test_peek_does_not_touch_recency(self):
        f = self.field()
        lru = DistanceFieldLRU(max_bytes=2 * f.nbytes)
        lru.put(0, self.field())
        lru.put(1, self.field())
        assert lru.peek(0) is not None
        lru.put(2, self.field())  # peek must not have refreshed 0
        assert lru.sources() == [1, 2]
        stats = lru.stats()
        assert stats["hits"] == 0 and stats["evictions"] == 1

    def test_replacement_accounts_bytes(self):
        lru = DistanceFieldLRU(max_bytes=10_000)
        lru.put(0, self.field(100))
        lru.put(0, self.field(200))
        assert lru.bytes == self.field(200).nbytes
        assert len(lru) == 1


# ---------------------------------------------------------------------------
# the scheduler end to end
# ---------------------------------------------------------------------------

class TestScheduler:
    def test_session_clean_and_accounted(self, small_kron):
        report = serve_traffic(small_kron, SMALL)
        assert report.ok
        assert report.queries == SMALL.num_queries
        served = (report.oracle_hits + report.cache_hits
                  + report.coalesced + report.fallbacks)
        assert served == report.queries
        assert len(report.latencies_ms) == report.queries
        assert report.makespan_ms > 0
        assert report.p99_ms >= report.p50_ms >= 0
        assert len(report.shard_busy_ms) == SMALL.shards

    def test_deterministic_counters(self, small_kron):
        a = serve_traffic(small_kron, SMALL)
        b = serve_traffic(small_kron, SMALL)
        assert a.counter_dict() == b.counter_dict()

    def test_cache_exploits_hot_sources(self, small_kron):
        report = serve_traffic(small_kron, SMALL)
        # Zipf-skewed pool traffic must mostly hit the LRU, and the
        # exact-run count must stay far below the query count
        assert report.cache_hits > report.queries / 3
        assert report.exact_runs < report.queries / 2

    def test_fault_plan_contained(self, small_kron):
        cfg = ServeConfig(num_queries=40, seed=11, source_pool=4,
                          landmarks=2, plan="lost-updates")
        report = serve_traffic(small_kron, cfg)
        assert report.faults_injected > 0
        assert report.faults_escaped == 0
        assert report.wrong == 0

    def test_multi_gpu_path(self, small_kron):
        cfg = ServeConfig(num_queries=30, seed=12, source_pool=3,
                          landmarks=2, multi_gpu=2)
        report = serve_traffic(small_kron, cfg)
        assert report.ok
        assert report.mg_supersteps > 0
        assert "serve.mg_supersteps" in report.counter_dict()

    def test_single_source_queries_never_oracle(self, small_kron):
        cfg = ServeConfig(num_queries=50, seed=13, p2p_fraction=0.0,
                          source_pool=4, landmarks=2)
        report = serve_traffic(small_kron, cfg)
        assert report.oracle_hits == 0
        assert report.single_source_queries == 50

    def test_serve_trace_spans(self, small_kron):
        from repro.trace import tracing

        with tracing() as tr:
            report = serve_traffic(small_kron, SMALL)
        spans = [e for e in tr.snapshot() if e.kind == "serve"]
        assert len(spans) == report.queries
        outcomes = {e.name for e in spans}
        assert outcomes <= {"oracle", "cache", "coalesced", "exact"}
        exact = [e for e in spans if e.name == "exact"]
        assert len(exact) == report.fallbacks

    def test_validation_catches_corruption(self, small_kron, monkeypatch):
        # sabotage the oracle certification to return garbage: the
        # session must count the wrong answers instead of passing
        import repro.serve.scheduler as sched

        monkeypatch.setattr(
            sched, "certified_answer",
            lambda oracle, u, v, tol: 1e30 if u != v else 0.0,
        )
        report = serve_traffic(small_kron, SMALL)
        assert report.wrong > 0
        assert not report.ok


# ---------------------------------------------------------------------------
# bench suites + trajectory gating
# ---------------------------------------------------------------------------

def _tiny_suite(monkeypatch):
    """Shrink serve-smoke to one fast session for suite-level tests."""
    from repro.serve.bench import ServeCellSpec

    cell = ServeCellSpec(
        name="tiny", dataset="Amazon",
        config=ServeConfig(num_queries=24, seed=77, source_pool=3,
                           cold_fraction=0.3, landmarks=2, shards=2),
    )
    monkeypatch.setitem(SERVE_SUITES, "serve-tiny", (cell,))
    return "serve-tiny"


class TestServeSuites:
    def test_names_registered(self):
        assert "serve-smoke" in serve_suite_names()
        from repro.bench.suites import suite_names

        assert set(serve_suite_names()) <= set(suite_names())

    def test_trajectory_byte_identical(self, monkeypatch):
        suite = _tiny_suite(monkeypatch)
        doc1 = json.dumps(
            suite_document(run_serve_suite(suite), suite=suite),
            sort_keys=True,
        )
        doc2 = json.dumps(
            suite_document(run_serve_suite(suite, jobs=2), suite=suite),
            sort_keys=True,
        )
        assert doc1 == doc2

    def test_dispatch_through_bench_run_suite(self, monkeypatch):
        from repro.bench.suites import run_suite

        suite = _tiny_suite(monkeypatch)
        direct = run_serve_suite(suite)
        via_bench = run_suite(suite)
        assert [r.as_dict() for r in via_bench] == [
            r.as_dict() for r in direct
        ]

    def test_records_pin_wall_clock(self, monkeypatch):
        suite = _tiny_suite(monkeypatch)
        (record,) = run_serve_suite(suite)
        assert record.host_seconds == 0.0
        assert record.method == "serve:tiny"
        assert record.counters["serve.wrong"] == 0.0

    def test_seed_offset_changes_trajectory(self, monkeypatch):
        suite = _tiny_suite(monkeypatch)
        base = run_serve_cell(suite, "tiny", 0)[1]
        moved = run_serve_cell(suite, "tiny", 1)[1]
        assert base.counters != moved.counters

    def test_gate_rejects_corrupt_server(self, monkeypatch):
        import repro.serve.scheduler as sched

        suite = _tiny_suite(monkeypatch)
        monkeypatch.setattr(
            sched, "certified_answer",
            lambda oracle, u, v, tol: 1e30 if u != v else 0.0,
        )
        with pytest.raises(RuntimeError, match="wrong answer"):
            run_serve_suite(suite)

    def test_committed_baseline_matches_fresh_run(self):
        """The repo-root BENCH_serve.json gates a fresh serve-smoke run.

        This is the CI serve job run in-process: any change that moves a
        single deterministic serving counter must refresh the baseline.
        """
        from pathlib import Path

        from repro.bench.trajectory import compare_records, load_trajectory

        baseline_path = Path(__file__).parent.parent / "BENCH_serve.json"
        meta, baseline = load_trajectory(baseline_path)
        assert meta["suite"] == "serve-smoke"
        current = run_serve_suite("serve-smoke")
        report = compare_records(baseline, current, check_wall=False)
        assert report.ok, report.summary()


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

class TestServeCLI:
    def test_adhoc_session(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "serve.json"
        code = main([
            "serve", "kron:8,8", "--queries", "30", "--pool", "3",
            "--landmarks", "2", "--out", str(out),
        ])
        assert code == 0
        assert "verdict : 0 wrong answer(s) — ok" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert doc["suite"] == "serve-custom"
        (rec,) = doc["records"]
        assert rec["method"] == "serve:custom"
        assert rec["counters"]["serve.queries"] == 30.0

    def test_requires_graph_or_suite(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["serve"])

    def test_suite_mode(self, capsys, monkeypatch):
        from repro.cli import main

        _tiny_suite(monkeypatch)
        code = main(["serve", "--suite", "tiny", "--seed", "0"])
        assert code == 0
        assert "1/1 session(s) clean" in capsys.readouterr().out

    def test_exit_code_on_wrong_answers(self, monkeypatch, capsys):
        import repro.serve.scheduler as sched
        from repro.cli import main

        _tiny_suite(monkeypatch)
        monkeypatch.setattr(
            sched, "certified_answer",
            lambda oracle, u, v, tol: 1e30 if u != v else 0.0,
        )
        assert main(["serve", "--suite", "tiny"]) == 1
        assert "FAILED" in capsys.readouterr().out
