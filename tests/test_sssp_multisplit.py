"""Warp-ballot multisplit placement: primitive, equivalence, fallback.

Three layers of proof for the multisplit bucket-placement paths:

1. the **device primitive** (`KernelContext.multisplit`) — semantics
   match the host reference, the W-MS cost model is charged exactly,
   validation fails fast *before* any accounting;
2. **engine equivalence** — each placement (RDBS, ADDS, Near-Far) is
   run against its inline `REPRO_NO_MULTISPLIT` legacy path: identical
   distances, identical per-round bucket membership (relax-kernel
   launch sequences), strictly fewer warp instructions *and* global
   memory transactions;
3. **fallback compatibility** — with the fallback active, counter
   snapshots serialize byte-identically to the committed pre-multisplit
   baseline (`tests/data/BENCH_quick_pre_multisplit.json`).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.gpusim import (
    GPUDevice,
    V100,
    ballot_rounds,
    multisplit_enabled,
    thread_per_item,
)
from repro.sssp import sssp, validate_distances
from repro.util.scan import multisplit_order

FIXTURE = Path(__file__).parent / "data" / "BENCH_quick_pre_multisplit.json"

#: the per-round relax kernels whose launch shapes encode bucket
#: membership: same vertices in the same buckets => same sequence
RELAX_KERNELS = {"phase1_async", "phase1_sync", "adds_async",
                 "nearfar_relax"}


@pytest.fixture
def dev():
    return GPUDevice(V100)


class TestEnabledFlag:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_MULTISPLIT", raising=False)
        assert multisplit_enabled()

    def test_env_disables_per_call(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_MULTISPLIT", "1")
        assert not multisplit_enabled()
        monkeypatch.delenv("REPRO_NO_MULTISPLIT")
        assert multisplit_enabled()


class TestBallotRounds:
    def test_one_ballot_even_for_trivial_splits(self):
        assert ballot_rounds(1) == 1
        assert ballot_rounds(2) == 1

    def test_one_round_per_split_bit(self):
        assert ballot_rounds(3) == 2
        assert ballot_rounds(4) == 2
        assert ballot_rounds(5) == 3
        assert ballot_rounds(32) == 5

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            ballot_rounds(0)


class TestDevicePrimitive:
    def test_matches_host_reference(self, dev):
        keys = np.array([2, 0, 1, 0, 2, 2, 1], dtype=np.int64)
        with dev.launch("ms") as k:
            order, offsets = k.multisplit(keys, 3, thread_per_item(7))
        ref_order, ref_offsets = multisplit_order(keys, 3)
        assert np.array_equal(order, ref_order)
        assert np.array_equal(offsets, ref_offsets)

    def test_charges_ballots_and_shared_transactions(self, dev):
        # 33 items -> 2 slots, 2 warps; B=4 -> 2 ballot rounds
        a = thread_per_item(33)
        keys = np.zeros(33, dtype=np.int64)
        with dev.launch("ms") as k:
            k.multisplit(keys, 4, a)
        c = dev.counters.totals
        assert c.inst_executed_ballots == a.num_slots * ballot_rounds(4) == 4
        assert c.shared_transactions == 2 * a.num_slots + 2 * 4 == 12
        assert c.multisplit_ops == 1
        assert c.multisplit_buckets == 4
        # ballots occupy issue slots: they count as warp instructions
        assert c.total_warp_instructions >= c.inst_executed_ballots
        # ...but shared traffic is on-chip, not global transactions
        assert c.total_transactions == 0

    def test_key_size_mismatch_fails_before_accounting(self, dev):
        with dev.launch("ms") as k:
            with pytest.raises(ValueError, match="assignment"):
                k.multisplit(np.zeros(3, dtype=np.int64), 2,
                             thread_per_item(8))
        c = dev.counters.totals
        assert c.multisplit_ops == 0
        assert c.inst_executed_ballots == 0
        assert c.shared_transactions == 0

    def test_out_of_range_key_raises(self, dev):
        with dev.launch("ms") as k:
            with pytest.raises(ValueError, match="must lie in"):
                k.multisplit(np.array([0, 5], dtype=np.int64), 2,
                             thread_per_item(2))

    def test_transform_hook_rewrites_keys(self, dev):
        """The fault seam: a key transform changes placement, nothing
        else — accounting happened before the hook ran."""

        class FlipKeys:
            def transform_multisplit(self, ctx, keys, num_buckets, a):
                return (num_buckets - 1) - keys

        dev.observers.append(FlipKeys())
        keys = np.array([0, 1, 0, 1], dtype=np.int64)
        with dev.launch("ms") as k:
            order, offsets = k.multisplit(keys, 2, thread_per_item(4))
        ref_order, ref_offsets = multisplit_order(1 - keys, 2)
        assert np.array_equal(order, ref_order)
        assert np.array_equal(offsets, ref_offsets)
        assert dev.counters.totals.multisplit_ops == 1

    def test_counter_snapshot_keys_conditional(self, dev):
        """The four multisplit keys appear iff a multisplit ran —
        the property that keeps the fallback byte-identical."""
        with dev.launch("plain") as k:
            arr = dev.zeros(8)
            k.gather(arr, np.arange(8, dtype=np.int64), thread_per_item(8))
        before = dev.counters.totals.as_dict()
        assert "inst_executed_ballots" not in before
        assert "multisplit_ops" not in before
        with dev.launch("ms") as k:
            k.multisplit(np.zeros(4, dtype=np.int64), 2, thread_per_item(4))
        after = dev.counters.totals.as_dict()
        for key in ("inst_executed_ballots", "shared_transactions",
                    "multisplit_ops", "multisplit_buckets"):
            assert key in after


# ----------------------------------------------------------------------
# engine equivalence: multisplit vs the inline legacy path
# ----------------------------------------------------------------------

class _LaunchLog:
    """Observer recording each launch's (kernel, threads) shape."""

    def __init__(self) -> None:
        self.launches: list[tuple[str, int]] = []

    def on_kernel_complete(self, device, ctx) -> None:
        self.launches.append(
            (ctx.name, int(ctx.counters.threads_launched))
        )


def _run(graph, source, method, monkeypatch, *, legacy):
    if legacy:
        monkeypatch.setenv("REPRO_NO_MULTISPLIT", "1")
    else:
        monkeypatch.delenv("REPRO_NO_MULTISPLIT", raising=False)
    log = _LaunchLog()
    from repro.gpusim.device import (
        register_global_observer,
        unregister_global_observer,
    )

    register_global_observer(log)
    try:
        res = sssp(graph, source, method=method, spec=V100)
    finally:
        unregister_global_observer(log)
    return res, log


ENGINES = ["rdbs", "adds", "near-far"]


class TestEngineEquivalence:
    @pytest.mark.parametrize("method", ENGINES)
    def test_placements_exact_and_strictly_cheaper(
        self, small_kron, kron_source, method, monkeypatch
    ):
        ms, ms_log = _run(small_kron, kron_source, method, monkeypatch,
                          legacy=False)
        legacy, legacy_log = _run(small_kron, kron_source, method,
                                  monkeypatch, legacy=True)
        validate_distances(small_kron, kron_source, ms.dist)
        assert np.array_equal(ms.dist, legacy.dist)
        # bucket membership: every relax round ran the same vertex set
        relax = [
            (n, t) for n, t in ms_log.launches if n in RELAX_KERNELS
        ]
        relax_legacy = [
            (n, t) for n, t in legacy_log.launches if n in RELAX_KERNELS
        ]
        assert relax == relax_legacy
        # the trade: strictly fewer instructions AND global transactions
        cm, cl = ms.counters.totals, legacy.counters.totals
        assert cm.total_warp_instructions < cl.total_warp_instructions
        assert cm.total_transactions < cl.total_transactions
        assert cm.multisplit_ops > 0
        assert cl.multisplit_ops == 0

    @pytest.mark.parametrize("method", ENGINES)
    def test_equivalence_on_road_grid(self, small_road, method,
                                      monkeypatch):
        ms, _ = _run(small_road, 0, method, monkeypatch, legacy=False)
        legacy, _ = _run(small_road, 0, method, monkeypatch, legacy=True)
        assert np.array_equal(ms.dist, legacy.dist)
        assert (ms.counters.totals.total_warp_instructions
                < legacy.counters.totals.total_warp_instructions)
        assert (ms.counters.totals.total_transactions
                < legacy.counters.totals.total_transactions)

    @pytest.mark.parametrize("method", ENGINES)
    def test_legacy_snapshot_has_no_multisplit_keys(
        self, small_kron, kron_source, method, monkeypatch
    ):
        legacy, _ = _run(small_kron, kron_source, method, monkeypatch,
                         legacy=True)
        d = legacy.counters.totals.as_dict()
        assert "inst_executed_ballots" not in d
        assert "shared_transactions" not in d


# ----------------------------------------------------------------------
# fallback compatibility: byte-identical to the pre-multisplit baseline
# ----------------------------------------------------------------------

class TestFallbackByteIdentical:
    @pytest.fixture(scope="class")
    def fixture_records(self):
        doc = json.loads(FIXTURE.read_text())
        return {
            (r["dataset"], r["method"]): r for r in doc["records"]
        }

    def test_fixture_predates_multisplit(self, fixture_records):
        for rec in fixture_records.values():
            assert "inst_executed_ballots" not in rec["counters"]

    @pytest.mark.parametrize("dataset,method", [
        ("Amazon", "adds"), ("Amazon", "rdbs"),
        ("road-TX", "adds"), ("road-TX", "rdbs"),
    ])
    def test_fallback_counters_byte_identical(
        self, fixture_records, dataset, method, monkeypatch
    ):
        """REPRO_NO_MULTISPLIT reproduces the pre-multisplit build's
        serialized counters exactly, key set included."""
        from repro.bench import record_from_run, run_method

        monkeypatch.setenv("REPRO_NO_MULTISPLIT", "1")
        rec = record_from_run(run_method(dataset, method, num_sources=2))
        want = fixture_records[(dataset, method)]
        assert rec.counters == want["counters"]
        assert rec.time_ms == want["time_ms"]
        # byte-identical at the serialization boundary (the trajectory
        # writer emits sorted keys)
        assert (json.dumps(rec.counters, sort_keys=True)
                == json.dumps(want["counters"], sort_keys=True))
