"""Property-based cross-validation: every implementation, random graphs.

The strongest correctness statement the suite makes: for arbitrary random
weighted graphs, every one of the library's nine SSSP implementations
produces exactly the distances of the independent SciPy oracle.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import from_edges
from repro.gpusim import V100, multi_gpu_sssp
from repro.sssp import sssp, validate_distances

SPEC = V100.scaled_for_workload(1 / 64)

graph_params = st.tuples(
    st.integers(2, 24),            # vertices
    st.integers(0, 60),            # arcs before symmetrization
    st.integers(0, 2**31 - 1),     # seed
    st.sampled_from(["int", "unit"]),
)


def build(params):
    n, m, seed, scheme = params
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    if scheme == "int":
        w = rng.integers(1, 20, m).astype(float)
    else:
        w = rng.random(m) + 1e-3
    g = from_edges(src, dst, w, num_vertices=n, symmetrize=True)
    return g, int(rng.integers(0, n))


@given(params=graph_params)
@settings(max_examples=30, deadline=None)
def test_rdbs_matches_oracle(params):
    g, s = build(params)
    validate_distances(g, s, sssp(g, s, method="rdbs", spec=SPEC).dist)


@given(params=graph_params)
@settings(max_examples=20, deadline=None)
def test_all_gpu_baselines_match_oracle(params):
    g, s = build(params)
    for m in ("bl", "near-far", "adds"):
        validate_distances(g, s, sssp(g, s, method=m, spec=SPEC).dist)


@given(params=graph_params)
@settings(max_examples=20, deadline=None)
def test_cpu_methods_match_oracle(params):
    g, s = build(params)
    for m in ("delta-cpu", "pq-delta*", "bellman-ford"):
        validate_distances(g, s, sssp(g, s, method=m).dist)


@given(params=graph_params, delta=st.floats(0.05, 50.0))
@settings(max_examples=20, deadline=None)
def test_rdbs_delta_invariance(params, delta):
    """The answer must not depend on the Δ parameter."""
    g, s = build(params)
    validate_distances(
        g, s, sssp(g, s, method="rdbs", spec=SPEC, delta=delta).dist
    )


@given(params=graph_params, ngpus=st.integers(1, 4))
@settings(max_examples=15, deadline=None)
def test_multi_gpu_matches_oracle(params, ngpus):
    g, s = build(params)
    r = multi_gpu_sssp(g, s, num_gpus=ngpus, spec=SPEC)
    validate_distances(g, s, r.dist)


@given(params=graph_params)
@settings(max_examples=15, deadline=None)
def test_work_tally_invariants(params):
    """total >= valid; every reached vertex implies one valid update."""
    g, s = build(params)
    r = sssp(g, s, method="rdbs", spec=SPEC)
    assert r.work.total_updates >= r.work.valid_updates
    assert r.work.valid_updates >= r.reached
