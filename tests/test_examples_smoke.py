"""Smoke tests: the bundled examples run end to end.

Runs the two fastest examples as subprocesses (the full set is exercised
manually / in CI's long lane); a broken public API surfaces here first.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_examples_directory_complete():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert "quickstart.py" in names
    assert len(names) >= 5  # quickstart + >= 4 scenario walkthroughs


def test_quickstart_runs():
    out = run_example("quickstart.py")
    assert "verified against" in out
    assert "rdbs" in out


def test_paper_walkthrough_runs():
    out = run_example("paper_walkthrough.py")
    assert "match Fig. 4(c) exactly" in out
    assert "distances unchanged by reordering" in out
