"""Tests for the SIMT work-to-thread mappings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import (
    grid_stride,
    thread_per_item,
    thread_per_vertex_edges,
    threads_per_vertex_edges,
)


class TestThreadPerItem:
    def test_basic(self):
        a = thread_per_item(65)
        assert a.num_threads == 65
        assert a.num_warps == 3
        assert a.num_slots == 3
        assert a.max_steps == 1
        assert a.num_items == 65

    def test_empty(self):
        a = thread_per_item(0)
        assert a.num_slots == 0 and a.max_steps == 0

    def test_efficiency_full_warp(self):
        assert thread_per_item(64).simt_efficiency == 1.0
        assert thread_per_item(33).simt_efficiency == pytest.approx(33 / 64)


class TestThreadPerVertexEdges:
    def test_warp_cost_is_max_degree(self):
        # one warp: degrees 1 and 9 -> the warp issues 9 steps
        a = thread_per_vertex_edges(np.array([1, 9]))
        assert a.num_slots == 9
        assert a.max_steps == 9
        assert a.num_items == 10

    def test_two_warps_independent(self):
        counts = np.zeros(64, dtype=np.int64)
        counts[0] = 5   # warp 0
        counts[40] = 3  # warp 1
        a = thread_per_vertex_edges(counts)
        assert a.num_slots == 8
        assert a.max_steps == 5

    def test_items_in_vertex_order(self):
        counts = np.array([2, 1])
        a = thread_per_vertex_edges(counts)
        # both vertices are in warp 0: edge 0 of v0 and edge 0 of v1 share
        # the first lockstep slot
        assert a.slots[0] == a.slots[2]
        assert a.slots[1] != a.slots[0]

    def test_empty(self):
        a = thread_per_vertex_edges(np.array([], dtype=np.int64))
        assert a.num_slots == 0 and a.num_threads == 0

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_analytic_slot_count_matches_unique(self, counts):
        a = thread_per_vertex_edges(np.array(counts, dtype=np.int64))
        expected = np.unique(a.slots).size if a.slots.size else 0
        assert a.num_slots == expected

    def test_hub_dominates_efficiency(self):
        """A single hub in a warp of leaves wastes almost all lanes."""
        counts = np.ones(32, dtype=np.int64)
        counts[0] = 1000
        a = thread_per_vertex_edges(counts)
        assert a.simt_efficiency < 0.05


class TestThreadsPerVertexEdges:
    def test_requires_warp_multiple(self):
        with pytest.raises(ValueError):
            threads_per_vertex_edges(np.array([4]), 48)

    def test_warp_granularity(self):
        a = threads_per_vertex_edges(np.array([64]), 32)
        assert a.max_steps == 2      # 64 edges / 32 lanes
        assert a.num_slots == 2
        assert a.num_threads == 32

    def test_block_granularity_collapses_hub(self):
        a = threads_per_vertex_edges(np.array([1000]), 256)
        assert a.max_steps == 4      # ceil(1000/256)
        # ceil(1000/32) warp instructions: lanes stay nearly full
        assert a.num_slots == 32
        assert a.simt_efficiency > 0.9

    @given(
        st.lists(st.integers(0, 300), min_size=1, max_size=40),
        st.sampled_from([32, 256]),
    )
    @settings(max_examples=50, deadline=None)
    def test_analytic_slot_count_matches_unique(self, counts, tpv):
        a = threads_per_vertex_edges(np.array(counts, dtype=np.int64), tpv)
        expected = np.unique(a.slots).size if a.slots.size else 0
        assert a.num_slots == expected

    def test_empty(self):
        a = threads_per_vertex_edges(np.array([], dtype=np.int64), 32)
        assert a.num_slots == 0


class TestGridStride:
    def test_balanced(self):
        a = grid_stride(1000, 64)
        assert a.max_steps == 16  # ceil(1000/64)
        assert a.num_items == 1000

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            grid_stride(10, 0)

    def test_empty_items(self):
        a = grid_stride(0, 128)
        assert a.num_slots == 0 and a.max_steps == 0

    def test_consecutive_items_share_slot(self):
        a = grid_stride(64, 64)
        assert a.slots[0] == a.slots[31]
        assert a.slots[0] != a.slots[32]

    @given(st.integers(0, 3000), st.sampled_from([32, 64, 192, 8192]))
    @settings(max_examples=50, deadline=None)
    def test_analytic_slot_count_matches_unique(self, n, t):
        a = grid_stride(n, t)
        expected = np.unique(a.slots).size if a.slots.size else 0
        assert a.num_slots == expected

    def test_efficiency_near_one_for_large_batches(self):
        assert grid_stride(10_000, 256).simt_efficiency > 0.95
