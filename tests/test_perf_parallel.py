"""Process-parallel suite runner: determinism and observer inheritance.

The contract under test: ``run_suite(..., jobs=N)`` returns records that
are byte-identical to a serial run in everything except host wall-clock
fields, in the same deterministic order — including when global device
observers (sanitizer, fault injector) are attached.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.suites import SUITES, SuiteSpec, run_suite
from repro.perf.parallel import default_jobs, resolve_jobs, run_tasks

#: a small matrix so the parity tests stay fast
MINI = SuiteSpec(
    name="mini", datasets=("Amazon",), methods=("bl", "rdbs"), num_sources=1
)


@pytest.fixture
def mini_suite(monkeypatch):
    monkeypatch.setitem(SUITES, "mini", MINI)
    return "mini"


def _strip_wall(rec) -> dict:
    d = rec.as_dict()
    d.pop("host_seconds", None)
    return d


# ---------------------------------------------------------------------------
# job resolution
# ---------------------------------------------------------------------------

def test_resolve_jobs_semantics():
    assert resolve_jobs(None) == 1
    assert resolve_jobs(1) == 1
    assert resolve_jobs(3) == 3
    assert resolve_jobs(0) == default_jobs()
    assert default_jobs() >= 1
    with pytest.raises(ValueError):
        resolve_jobs(-1)


# ---------------------------------------------------------------------------
# run_tasks
# ---------------------------------------------------------------------------

def _echo(i, delay):
    time.sleep(delay)
    return i


def test_run_tasks_preserves_submission_order():
    # later tasks finish first; results must still come back in task order
    tasks = [(0, 0.05), (1, 0.0), (2, 0.02), (3, 0.0)]
    assert run_tasks(_echo, tasks, jobs=4) == [0, 1, 2, 3]


def test_run_tasks_serial_degradation():
    assert run_tasks(_echo, [(7, 0.0)], jobs=8) == [7]
    assert run_tasks(_echo, [(1, 0.0), (2, 0.0)], jobs=1) == [1, 2]


def _boom(x):
    raise RuntimeError(f"worker failed on {x}")


def test_run_tasks_propagates_worker_exceptions():
    with pytest.raises(RuntimeError, match="worker failed"):
        run_tasks(_boom, [(1,), (2,)], jobs=2)


# ---------------------------------------------------------------------------
# suite parity: jobs=N == jobs=1 modulo wall fields
# ---------------------------------------------------------------------------

def test_parallel_suite_matches_serial(mini_suite):
    serial = run_suite(mini_suite, jobs=1)
    parallel = run_suite(mini_suite, jobs=4)
    assert [_strip_wall(r) for r in parallel] == [
        _strip_wall(r) for r in serial
    ]
    # deterministic suite order: datasets x methods as declared
    assert [(r.dataset, r.method) for r in parallel] == [
        ("Amazon", "bl"), ("Amazon", "rdbs")
    ]


def test_parallel_suite_matches_serial_under_sanitizer(mini_suite):
    """Workers inherit globally-registered observers through fork, and the
    sanitizer must not perturb any recorded device quantity."""
    from repro.analysis import attached

    bare = run_suite(mini_suite, jobs=1)
    with attached():
        serial = run_suite(mini_suite, jobs=1)
        parallel = run_suite(mini_suite, jobs=2)
    want = [_strip_wall(r) for r in bare]
    assert [_strip_wall(r) for r in serial] == want
    assert [_strip_wall(r) for r in parallel] == want


def test_parallel_suite_matches_serial_under_fault_injector(mini_suite):
    """An attached (but inert) fault injector exercises the transform-hook
    dispatch in every worker without perturbing results.  (An *active*
    plan is stateful across cells by design, so cell-order independence
    can only be promised for observers that do not mutate state.)"""
    from repro.faults import FaultInjector
    from repro.faults.plan import FaultPlan, FaultSpec

    inert = FaultPlan(
        name="inert", seed=0,
        specs=(FaultSpec("lost-update", count=0),),
    )
    bare = run_suite(mini_suite, jobs=1)
    with FaultInjector(inert).attached():
        parallel = run_suite(mini_suite, jobs=2)
    assert [_strip_wall(r) for r in parallel] == [
        _strip_wall(r) for r in bare
    ]


def test_jobs_zero_uses_all_cores(mini_suite):
    records = run_suite(mini_suite, jobs=0)
    assert [(r.dataset, r.method) for r in records] == [
        ("Amazon", "bl"), ("Amazon", "rdbs")
    ]


def test_unknown_suite_raises():
    with pytest.raises(ValueError, match="unknown suite"):
        run_suite("nope")
