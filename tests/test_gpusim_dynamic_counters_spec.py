"""Tests for workload classification (ADWL), counters and GPU specs."""

import numpy as np
import pytest

from repro.gpusim import (
    ALPHA,
    BETA,
    A100,
    GPUDevice,
    KernelCounters,
    T4,
    V100,
    classify_workloads,
    launch_adaptive,
)
from repro.gpusim.dynamic import MULTI_BLOCK
from repro.gpusim.timemodel import kernel_time


class TestClassification:
    def test_paper_thresholds(self):
        assert BETA == 32 and ALPHA == 256

    def test_boundaries(self):
        counts = np.array([0, 31, 32, 255, 256, 5000])
        c = classify_workloads(counts)
        assert list(c.small) == [0, 1]
        assert list(c.middle) == [2, 3]
        assert list(c.large) == [4, 5]
        assert c.counts == (2, 2, 2)

    def test_empty(self):
        c = classify_workloads(np.array([], dtype=np.int64))
        assert c.counts == (0, 0, 0)

    def test_paper_examples(self):
        """§4.2: 6 edges -> parent; 224 -> warp child; 4000 -> block child."""
        c = classify_workloads(np.array([6, 224, 4000]))
        assert list(c.small) == [0]
        assert list(c.middle) == [1]
        assert list(c.large) == [2]


class TestLaunchAdaptive:
    def test_child_launch_accounting(self):
        dev = GPUDevice(V100)
        counts = np.array([6, 224, 4000, 10_000])
        with dev.launch("k") as k:
            groups = launch_adaptive(k, counts)
        c = dev.counters.totals
        # 1 warp child (224) + blocks: 4000 -> 1, 10000 -> floor(10000/4096)=2
        assert c.child_kernel_launches == 1 + 1 + 2
        assert len(groups) == 3

    def test_small_only_no_children(self):
        dev = GPUDevice(V100)
        with dev.launch("k") as k:
            groups = launch_adaptive(k, np.array([1, 2, 3]))
        assert dev.counters.totals.child_kernel_launches == 0
        assert len(groups) == 1

    def test_multi_block_threshold(self):
        assert MULTI_BLOCK == 4096

    def test_group_items_cover_all_edges(self):
        dev = GPUDevice(V100)
        counts = np.array([10, 100, 600])
        with dev.launch("k") as k:
            groups = launch_adaptive(k, counts)
        total = sum(a.num_items for _, a in groups)
        assert total == counts.sum()


class TestCounters:
    def test_merge_and_copy(self):
        a = KernelCounters(inst_executed_global_loads=3, l1_hits=1, l1_accesses=2)
        b = a.copy()
        b.merge(a)
        assert b.inst_executed_global_loads == 6
        assert a.inst_executed_global_loads == 3

    def test_hit_rate(self):
        c = KernelCounters(l1_hits=30, l1_accesses=40)
        assert c.global_hit_rate == pytest.approx(75.0)
        assert KernelCounters().global_hit_rate == 0.0

    def test_simt_efficiency(self):
        c = KernelCounters(active_lanes=16, lane_slots=32)
        assert c.simt_efficiency == 0.5
        assert KernelCounters().simt_efficiency == 1.0

    def test_as_dict_has_derived(self):
        d = KernelCounters(l1_hits=1, l1_accesses=2).as_dict()
        assert d["global_hit_rate"] == 50.0
        assert "simt_efficiency" in d

    def test_totals(self):
        c = KernelCounters(
            inst_executed_global_loads=1,
            inst_executed_global_stores=2,
            inst_executed_atomics=3,
            inst_executed_other=4,
            global_load_transactions=5,
            global_store_transactions=6,
            atomic_transactions=7,
        )
        assert c.total_warp_instructions == 10
        assert c.total_transactions == 18


class TestSpecs:
    def test_paper_platform_numbers(self):
        assert V100.num_sms == 80 and V100.cuda_cores == 5120
        assert V100.mem_bandwidth_gbps == 900.0
        assert T4.num_sms == 40 and T4.cuda_cores == 2560
        assert T4.mem_bandwidth_gbps == 320.0

    def test_derived(self):
        assert V100.total_l1_bytes == 80 * 128 * 1024
        assert V100.resident_warps == 80 * 64
        assert V100.clock_hz == pytest.approx(1.53e9)

    def test_scaled(self):
        half = V100.scaled(0.5)
        assert half.num_sms == 40
        assert half.mem_bandwidth_gbps == 450.0

    def test_scaled_for_workload(self):
        s = V100.scaled_for_workload(1 / 64)
        assert s.l1_kb_per_sm == 2
        assert s.kernel_launch_s == pytest.approx(V100.kernel_launch_s / 64)
        assert s.num_sms == V100.num_sms  # throughputs untouched
        assert s.mem_bandwidth_gbps == V100.mem_bandwidth_gbps

    def test_scaled_for_workload_validation(self):
        with pytest.raises(ValueError):
            V100.scaled_for_workload(0.0)
        assert V100.scaled_for_workload(1.0) is V100

    def test_a100_has_more_bandwidth(self):
        assert A100.mem_bandwidth_gbps > V100.mem_bandwidth_gbps


class TestTimeModel:
    def test_zero_counters_zero_time(self):
        assert kernel_time(V100, KernelCounters(), 0) == 0.0

    def test_memory_bound_scales_with_traffic(self):
        c1 = KernelCounters(global_load_transactions=1000)
        c2 = KernelCounters(global_load_transactions=2000)
        assert kernel_time(V100, c2, 0) == pytest.approx(2 * kernel_time(V100, c1, 0))

    def test_l1_hits_reduce_memory_time(self):
        miss = KernelCounters(global_load_transactions=1000, l1_accesses=1000)
        hit = KernelCounters(
            global_load_transactions=1000, l1_accesses=1000, l1_hits=900
        )
        assert kernel_time(V100, hit, 0) < kernel_time(V100, miss, 0)

    def test_critical_path_bound(self):
        c = KernelCounters(inst_executed_other=10)
        assert kernel_time(V100, c, 100_000) > kernel_time(V100, c, 10)

    def test_atomic_conflicts_add_time(self):
        base = KernelCounters()
        conflicted = KernelCounters(atomic_conflicts=100_000)
        assert kernel_time(V100, conflicted, 0) > kernel_time(V100, base, 0)

    def test_t4_memory_bound_slower(self):
        c = KernelCounters(global_load_transactions=100_000)
        assert kernel_time(T4, c, 0) > kernel_time(V100, c, 0)
