"""Tests for the static kernel-authoring lint (repro.analysis.lint)."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import lint_paths, lint_source

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"


def rules(findings):
    return [f.rule for f in findings]


class TestOwnSources:
    def test_src_repro_is_clean(self):
        findings = lint_paths([str(SRC)])
        assert findings == [], "\n".join(
            f"{f.path}:{f.line}: {f.rule} {f.message}" for f in findings
        )

    def test_benchmarks_and_examples_are_clean(self):
        findings = lint_paths(
            [str(REPO / "benchmarks"), str(REPO / "examples")]
        )
        assert findings == [], "\n".join(
            f"{f.path}:{f.line}: {f.rule} {f.message}" for f in findings
        )

    def test_an202_scoped_to_packages(self, tmp_path):
        # AN202 (missing __all__) is about a module's import surface: it
        # applies inside packages, not to standalone scripts
        script = tmp_path / "bench_x.py"
        script.write_text("def f(arr):\n    return arr\n")
        assert rules(lint_paths([tmp_path])) == []
        (tmp_path / "__init__.py").write_text("__all__ = []\n")
        assert rules(lint_paths([tmp_path])) == ["AN202"]


class TestKernelContextRules:
    def test_an101_data_write_outside_launch(self):
        src = (
            "__all__ = []\n"
            "def f(arr):\n"
            "    arr.data[3] = 1.0\n"
        )
        assert rules(lint_source(src, "x.py")) == ["AN101"]

    def test_an101_ufunc_at_on_data(self):
        src = (
            "import numpy as np\n"
            "__all__ = []\n"
            "def f(arr):\n"
            "    np.add.at(arr.data, [1], 2.0)\n"
        )
        assert rules(lint_source(src, "x.py")) == ["AN101"]

    def test_an102_data_access_inside_launch(self):
        """The acceptance fixture: raw backing-storage access inside a
        kernel context is un-counted device traffic."""
        src = (
            "__all__ = []\n"
            "def f(dev, arr):\n"
            "    with dev.launch('k') as k:\n"
            "        x = arr.data[2]\n"
        )
        found = lint_source(src, "x.py")
        assert rules(found) == ["AN102"]
        assert found[0].line == 4

    def test_counted_gather_is_clean(self):
        src = (
            "__all__ = []\n"
            "def f(dev, arr, idx, a):\n"
            "    with dev.launch('k') as k:\n"
            "        x = k.gather(arr, idx, a)\n"
        )
        assert lint_source(src, "x.py") == []

    def test_an103_scalar_device_read_in_loop(self):
        src = (
            "__all__ = []\n"
            "def f(arr):\n"
            "    for i in range(10):\n"
            "        x = float(arr.data[i])\n"
        )
        assert rules(lint_source(src, "x.py")) == ["AN103"]

    def test_an103_not_flagged_outside_loop(self):
        src = (
            "__all__ = []\n"
            "def f(arr):\n"
            "    return float(arr.data[0])\n"
        )
        assert lint_source(src, "x.py") == []

    def test_an103_while_loop_body(self):
        # regression: while bodies are hot loops too
        src = (
            "__all__ = []\n"
            "def f(arr, n):\n"
            "    i = 0\n"
            "    while i < n:\n"
            "        x = float(arr.data[i])\n"
            "        i += 1\n"
        )
        assert rules(lint_source(src, "x.py")) == ["AN103"]

    def test_an103_int_and_bool_conversions(self):
        src = (
            "__all__ = []\n"
            "def f(arr, flags, n):\n"
            "    while n:\n"
            "        i = int(arr.data[0])\n"
            "        b = bool(flags.data[i])\n"
        )
        assert rules(lint_source(src, "x.py")) == ["AN103", "AN103"]

    def test_an103_element_read_inside_expression(self):
        src = (
            "__all__ = []\n"
            "def f(dist, u, w, n):\n"
            "    while n:\n"
            "        nd = float(dist.data[u] + w)\n"
        )
        assert rules(lint_source(src, "x.py")) == ["AN103"]

    def test_an103_masked_reduction_is_exempt(self):
        # one reduction transfer per iteration is the device-reduction
        # idiom, not a per-element round-trip
        src = (
            "__all__ = []\n"
            "def f(dist, mask, n):\n"
            "    while n:\n"
            "        lo = float(dist.data[mask].min())\n"
        )
        assert lint_source(src, "x.py") == []

    def test_an103_item_in_while_loop(self):
        src = (
            "__all__ = []\n"
            "def f(arr, n):\n"
            "    while n:\n"
            "        x = arr.data[0].item()\n"
        )
        assert rules(lint_source(src, "x.py")) == ["AN103"]


class TestGeneralRules:
    def test_an201_mutable_default(self):
        src = "__all__ = []\ndef f(x=[]):\n    return x\n"
        assert rules(lint_source(src, "x.py")) == ["AN201"]

    def test_an202_missing_all(self):
        src = "def f():\n    pass\n"
        assert rules(lint_source(src, "x.py")) == ["AN202"]

    def test_an202_not_required_when_disabled(self):
        src = "def f():\n    pass\n"
        assert lint_source(src, "x.py", require_all=False) == []


class TestSuppression:
    def test_disable_comment_silences_the_line(self):
        src = (
            "__all__ = []\n"
            "def f(arr):\n"
            "    arr.data[3] = 1.0  # repro-lint: disable=AN101\n"
        )
        assert lint_source(src, "x.py") == []

    def test_disable_of_other_rule_does_not_silence(self):
        src = (
            "__all__ = []\n"
            "def f(arr):\n"
            "    arr.data[3] = 1.0  # repro-lint: disable=AN103\n"
        )
        assert rules(lint_source(src, "x.py")) == ["AN101"]


class TestCli:
    def test_lint_command_clean_on_src(self, capsys):
        from repro.cli import main

        assert main(["lint", str(SRC)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_command_fails_on_violation(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "__all__ = []\n"
            "def f(dev, arr):\n"
            "    with dev.launch('k') as k:\n"
            "        arr.data[0] = 1.0\n"
        )
        from repro.cli import main

        assert main(["lint", str(bad)]) == 1
        assert "AN102" in capsys.readouterr().out
