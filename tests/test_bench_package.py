"""Tests for the benchmark harness package itself."""

import pytest

from repro.bench import (
    FIG8_DATASETS,
    FIG9_DATASETS,
    WORKLOAD_SCALE,
    benchmark_spec,
    format_table,
    geo_speedup,
    get_graph,
    pick_sources,
    run_matrix,
    run_method,
    write_results,
)
from repro.gpusim import T4, V100


class TestDatasets:
    def test_scaled_spec(self):
        s = benchmark_spec()
        assert s.kernel_launch_s == pytest.approx(
            V100.kernel_launch_s * WORKLOAD_SCALE
        )
        t = benchmark_spec(T4)
        assert t.num_sms == 40

    def test_get_graph_memoized(self):
        assert get_graph("Amazon") is get_graph("Amazon")

    def test_pick_sources_deterministic(self):
        assert pick_sources("Amazon", 3) == pick_sources("Amazon", 3)
        assert len(pick_sources("Amazon", 2)) == 2

    def test_figure_dataset_lists(self):
        assert len(FIG8_DATASETS) == 6
        assert len(FIG9_DATASETS) == 10
        assert "k-n21-16" in FIG8_DATASETS
        assert "soc-TW" in FIG9_DATASETS


class TestRunMethod:
    def test_runs_and_validates(self):
        run = run_method("Amazon", "rdbs", num_sources=1)
        assert run.time_ms > 0
        assert run.gteps > 0
        assert run.update_ratio >= 1.0
        assert run.counters is not None
        # perf-trajectory provenance: wall clock and device label
        assert run.host_seconds > 0
        assert run.gpu.startswith("V100")

    def test_explicit_graph_and_sources(self):
        from repro.graphs import kronecker

        g = kronecker(7, 6, weights="int", seed=9)
        run = run_method(g.name, "rdbs", graph=g, sources=[0])
        assert run.dataset == g.name
        assert len(run.results) == 1

    def test_cpu_method_no_spec(self):
        run = run_method("Amazon", "pq-delta*", num_sources=1)
        assert run.time_ms > 0

    def test_matrix(self):
        m = run_matrix(["Amazon"], ["rdbs", "bl"], num_sources=1)
        assert set(m) == {("Amazon", "rdbs"), ("Amazon", "bl")}
        assert geo_speedup(m, ["Amazon"], "bl", "rdbs") > 0


class TestFormatting:
    def test_format_table(self):
        text = format_table(
            ["a", "bb"], [[1, 2.5], ["x", float("nan")]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "-" in lines[2]
        assert "2.500" in text
        assert "-" in lines[4]  # NaN renders as dash

    def test_format_large_floats(self):
        assert "123.5" in format_table(["x"], [[123.456]])

    def test_write_results(self, tmp_path, monkeypatch):
        import repro.bench.harness as h

        monkeypatch.setattr(h, "RESULTS_DIR", tmp_path / "r")
        p = h.write_results("t.txt", "hello")
        assert p.read_text() == "hello\n"

    def test_write_results_dir_injectable(self, tmp_path):
        # installed (non-editable) packages can't rely on the repo-relative
        # RESULTS_DIR; callers inject the output directory instead
        from repro.bench.harness import write_results

        p = write_results("t.txt", "hi", results_dir=tmp_path / "out")
        assert p == tmp_path / "out" / "t.txt"
        assert p.read_text() == "hi\n"

    def test_default_results_dir_falls_back_to_cwd(
        self, tmp_path, monkeypatch
    ):
        import repro.bench.harness as h

        # simulate a site-packages install: RESULTS_DIR's parent is gone
        monkeypatch.setattr(
            h, "RESULTS_DIR", tmp_path / "missing" / "benchmarks" / "results"
        )
        monkeypatch.chdir(tmp_path)
        assert h.default_results_dir() == tmp_path / "benchmarks" / "results"

    def test_write_results_json_sidecar(self, tmp_path):
        import json

        from repro.bench import run_method, write_results

        run = run_method("Amazon", "rdbs", num_sources=1)
        write_results(
            "cell.txt", "table", records=[run], results_dir=tmp_path
        )
        doc = json.loads((tmp_path / "cell.json").read_text())
        assert doc["suite"] == "cell"
        assert doc["records"][0]["method"] == "rdbs"
        assert doc["records"][0]["counters"]["kernel_launches"] > 0
