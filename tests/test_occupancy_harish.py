"""Tests for the occupancy calculator, the Harish–Narayanan baseline and
the async chunk-size knob."""

import numpy as np
import pytest

from repro.graphs import kronecker, path, star
from repro.gpusim import (
    OccupancyLimits,
    T4,
    V100,
    clamp_grid,
    occupancy,
)
from repro.sssp import harish_narayanan_sssp, rdbs_sssp, sssp, validate_distances

SPEC = V100.scaled_for_workload(1 / 64)


class TestOccupancy:
    def test_full_occupancy_small_blocks(self):
        o = occupancy(V100, 256)
        assert o.is_full
        assert o.warps_per_sm == V100.max_warps_per_sm
        assert o.blocks_per_sm == 8

    def test_warp_slot_limited(self):
        o = occupancy(V100, 1024)
        assert o.limiter in ("warp-slots", "registers")
        assert o.warps_per_sm <= V100.max_warps_per_sm

    def test_register_pressure_reduces_occupancy(self):
        light = occupancy(V100, 256, registers_per_thread=32)
        heavy = occupancy(V100, 256, registers_per_thread=255)
        assert heavy.warps_per_sm < light.warps_per_sm
        assert heavy.limiter == "registers"

    def test_shared_memory_limit(self):
        o = occupancy(V100, 128, shared_mem_per_block=48 * 1024)
        assert o.blocks_per_sm == 2
        assert o.limiter == "shared-memory"

    def test_t4_has_fewer_warp_slots(self):
        assert occupancy(T4, 256).warps_per_sm <= occupancy(V100, 256).warps_per_sm

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            occupancy(V100, 0)
        with pytest.raises(ValueError):
            occupancy(V100, 2048)

    def test_custom_limits(self):
        tight = OccupancyLimits(max_blocks_per_sm=2)
        o = occupancy(V100, 32, limits=tight)
        assert o.blocks_per_sm == 2
        assert o.limiter == "block-slots"

    def test_occupancy_fraction_bounds(self):
        for tpb in (32, 64, 128, 256, 512, 1024):
            o = occupancy(V100, tpb)
            assert 0.0 < o.occupancy <= 1.0


class TestClampGrid:
    def test_small_work_fits(self):
        assert clamp_grid(V100, 100, 256) == 1

    def test_large_work_clamped(self):
        blocks = clamp_grid(V100, 10**9, 256, max_waves=8)
        assert blocks == 8 * V100.num_sms * 8  # 8 blocks/SM * 80 SMs * 8 waves

    def test_zero_work(self):
        assert clamp_grid(V100, 0, 256) == 0

    def test_exact_boundary(self):
        assert clamp_grid(V100, 256, 256) == 1
        assert clamp_grid(V100, 257, 256) == 2


class TestHarishNarayanan:
    @pytest.mark.parametrize(
        "graph", [kronecker(7, 6, weights="int", seed=60), path(30), star(50)]
    )
    def test_correct(self, graph):
        r = harish_narayanan_sssp(graph, 0, spec=SPEC)
        validate_distances(graph, 0, r.dist)

    def test_topology_driven_reads_all_vertices(self):
        """Every iteration loads every vertex's mask — the design's
        signature inefficiency."""
        g = path(50)
        r = harish_narayanan_sssp(g, 0, spec=SPEC)
        iters = r.extra["iterations"]
        c = r.counters.totals
        # at least n/32 warp-level mask loads per iteration (thread/vertex)
        assert c.inst_executed_global_loads >= (g.num_vertices // 32) * (iters - 1)

    def test_divergence_on_sparse_masks(self):
        g = path(40)
        r = harish_narayanan_sssp(g, 0, spec=SPEC)
        assert r.counters.totals.divergent_branches > 0

    def test_registered_in_api(self):
        g = path(8)
        r = sssp(g, 0, method="harish-narayanan", spec=SPEC)
        assert r.method == "harish-narayanan"

    def test_iteration_cutoff(self):
        g = path(30)
        r = harish_narayanan_sssp(g, 0, spec=SPEC, max_iterations=3)
        assert np.isinf(r.dist[-1])

    def test_source_validation(self):
        with pytest.raises(ValueError):
            harish_narayanan_sssp(path(4), 10, spec=SPEC)


class TestAsyncChunk:
    def test_chunk_correctness(self):
        g = kronecker(8, 8, weights="int", seed=61)
        for chunk in (1, 7, 64, 100_000):
            r = rdbs_sssp(g, 0, spec=SPEC, async_chunk=chunk)
            validate_distances(g, 0, r.dist)

    def test_smaller_chunks_more_rounds(self):
        from repro.graphs import largest_component_vertices

        g = kronecker(10, 8, weights="int", seed=62)
        src = int(largest_component_vertices(g)[0])
        small = rdbs_sssp(g, src, spec=SPEC, async_chunk=8).extra["rounds"]
        big = rdbs_sssp(g, src, spec=SPEC, async_chunk=100_000).extra["rounds"]
        assert small > big

    def test_invalid_chunk(self):
        with pytest.raises(ValueError):
            rdbs_sssp(path(4), 0, spec=SPEC, async_chunk=0)
