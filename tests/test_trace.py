"""Tests for repro.trace: the structured event-tracing layer.

Covers the ISSUE-5 acceptance points: tracing attached does not perturb
any device quantity (and off is trivially identical — the bench gate
holds that line), the Chrome export is valid ``trace_event`` JSON, the
Δ_i series on ``SSSPResult`` matches the bucket sequence observers see,
and the ring buffer bounds memory on long runs.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.gpusim.device import register_global_observer, unregister_global_observer
from repro.sssp import sssp, validate_distances
from repro.trace import (
    TraceEvent,
    Tracer,
    active_tracer,
    format_summary,
    load_trace,
    to_chrome,
    traced_sssp,
    tracing,
    write_chrome,
    write_jsonl,
)


def _counter_dict(result) -> dict:
    return {
        k: int(v)
        for k, v in vars(result.counters.totals).items()
        if isinstance(v, (int, np.integer))
    }


# ----------------------------------------------------------------------
# zero-perturbation contract
# ----------------------------------------------------------------------

class TestZeroCost:
    def test_traced_run_byte_identical_device_quantities(self, small_kron, kron_source):
        """An attached tracer must not move a single counter or the
        simulated clock — the observer seam is read-only."""
        plain = sssp(small_kron, kron_source, method="rdbs")
        traced, tr = traced_sssp(small_kron, kron_source, method="rdbs")
        assert len(tr) > 0
        assert traced.time_ms == plain.time_ms
        assert _counter_dict(traced) == _counter_dict(plain)
        np.testing.assert_array_equal(traced.dist, plain.dist)

    def test_tracer_detaches_cleanly(self, small_kron, kron_source):
        assert active_tracer() is None
        with tracing() as tr:
            assert active_tracer() is tr
        assert active_tracer() is None
        # a run after detach emits nothing into the old tracer
        n = len(tr)
        sssp(small_kron, kron_source, method="rdbs")
        assert len(tr) == n

    def test_region_sink_restored_after_tracing(self):
        from repro.perf import profile

        with tracing():
            pass
        with profile.region("after-detach"):
            pass  # must be a no-op again, not feed the dead tracer


# ----------------------------------------------------------------------
# event content
# ----------------------------------------------------------------------

class TestEvents:
    @pytest.fixture()
    def traced_rdbs(self, small_kron, kron_source):
        result, tr = traced_sssp(small_kron, kron_source, method="rdbs")
        validate_distances(small_kron, kron_source, result.dist)
        return result, tr

    def test_kernel_spans_have_durations_and_counters(self, traced_rdbs):
        result, tr = traced_rdbs
        kernels = [e for e in tr.events if e.kind == "kernel"]
        assert kernels
        names = {e.name for e in kernels}
        assert {"phase1_async", "phase23_fused"} <= names
        total = sum(e.dur_ms for e in kernels)
        assert 0 < total <= result.time_ms + 1e-9
        for e in kernels:
            assert e.args["threads"] >= 0
            assert e.args["warp_instructions"] >= 0
            assert e.ts_ms >= 0

    def test_bucket_spans_carry_eq12_inputs(self, traced_rdbs):
        result, tr = traced_rdbs
        buckets = [e for e in tr.events if e.kind == "bucket"]
        assert len(buckets) == result.extra["buckets"]
        for e in buckets:
            a = e.args
            assert {"index", "lo", "hi", "delta", "epsilon",
                    "converged", "threads", "rounds"} <= set(a)
            assert a["delta"] == pytest.approx(a["hi"] - a["lo"])
            assert a["converged"] >= 0 and a["threads"] >= 0

    def test_delta_series_matches_observed_bucket_sequence(self, traced_rdbs):
        """The telemetry on SSSPResult and the tracer's bucket spans are
        two views of the same annotate stream — they must agree."""
        result, tr = traced_rdbs
        assert result.extra["delta_series"] == pytest.approx(tr.delta_series())
        spans = [e.args for e in tr.events if e.kind == "bucket"]
        rows = result.extra["bucket_telemetry"]
        assert [s["index"] for s in spans] == [r["bucket"] for r in rows]
        assert [s["epsilon"] for s in spans] == pytest.approx(
            result.extra["epsilon_series"]
        )
        # Eq. 2: each processed bucket's width is lo/hi-consistent
        for r in rows:
            assert r["delta"] == pytest.approx(r["hi"] - r["lo"])

    def test_delta_series_matches_sanitizer_visible_buckets(
        self, small_kron, kron_source
    ):
        """A second, independent observer (like the sanitizer) sees the
        same bucket sequence the telemetry reports."""

        class BucketWatcher:
            def __init__(self):
                self.widths = []

            def on_annotate(self, _device, tag, payload):
                if tag == "bucket":
                    self.widths.append(payload["hi"] - payload["lo"])

        watcher = BucketWatcher()
        register_global_observer(watcher)
        try:
            result = sssp(small_kron, kron_source, method="rdbs")
        finally:
            unregister_global_observer(watcher)
        assert watcher.widths == pytest.approx(result.extra["delta_series"])

    def test_adwl_histogram_counters(self, traced_rdbs):
        _, tr = traced_rdbs
        adwl = [e for e in tr.events if e.kind == "counter" and e.name == "adwl"]
        assert adwl
        for e in adwl:
            assert set(e.args) == {"small", "middle", "large"}
            assert sum(e.args.values()) > 0

    def test_async_round_progress(self, traced_rdbs):
        result, tr = traced_rdbs
        rounds = [e for e in tr.events
                  if e.kind == "counter" and e.name == "async_round"]
        assert len(rounds) == result.extra["rounds"]
        assert all(e.args["drained"] > 0 for e in rounds)

    def test_sync_and_bl_rounds_annotated(self, small_kron, kron_source):
        _, tr = traced_sssp(small_kron, kron_source, method="sync-delta")
        assert any(e.name == "sync_round" for e in tr.events)
        _, tr = traced_sssp(small_kron, kron_source, method="bl")
        bl = [e for e in tr.events if e.name == "bl_round"]
        assert bl and all(e.args["frontier"] > 0 for e in bl)

    def test_faulty_run_traces_faults_and_recovery(self, small_kron, kron_source):
        from repro.faults import faulty_sssp

        with tracing() as tr:
            _result, report = faulty_sssp(
                small_kron, kron_source, method="rdbs",
                plan="lost-updates", seed=0, recovery=True,
            )
        faults = [e for e in tr.events if e.kind == "fault"]
        assert len(faults) == report.injected
        assert {e.name for e in faults} == {"lost-update"}
        assert any(e.kind == "recovery" for e in tr.events)

    def test_alloc_events(self, traced_rdbs):
        _, tr = traced_rdbs
        allocs = [e for e in tr.events if e.kind == "alloc"]
        assert any(e.name == "dist" for e in allocs)
        assert all(e.args["bytes"] > 0 for e in allocs)

    def test_multisplit_telemetry_on_kernel_spans(self, traced_rdbs):
        """Launches that issued a warp-ballot multisplit carry the four
        extra args; launches that didn't carry none of them (mirroring
        the counter snapshot's conditional keys)."""
        result, tr = traced_rdbs
        ms_keys = {"histogram_passes", "num_buckets", "warp_ballots",
                   "shared_transactions"}
        kernels = [e for e in tr.events if e.kind == "kernel"]
        with_ms = [e for e in kernels if ms_keys <= set(e.args)]
        assert with_ms  # RDBS splits in every phase
        for e in with_ms:
            assert e.args["histogram_passes"] >= 1
            assert e.args["num_buckets"] >= 2
            assert e.args["warp_ballots"] >= 1
            assert e.args["shared_transactions"] >= 1
        without = [e for e in kernels if not ms_keys <= set(e.args)]
        for e in without:
            assert not (ms_keys & set(e.args))
        # span telemetry sums to the run totals
        c = result.counters.totals
        assert sum(e.args["histogram_passes"] for e in with_ms) \
            == c.multisplit_ops
        assert sum(e.args["warp_ballots"] for e in with_ms) \
            == c.inst_executed_ballots

    def test_multisplit_args_survive_export_round_trips(
        self, traced_rdbs, tmp_path
    ):
        _, tr = traced_rdbs
        ms_keys = {"histogram_passes", "num_buckets", "warp_ballots",
                   "shared_transactions"}

        def ms_args(events):
            return [
                {k: e.args[k] for k in sorted(ms_keys)}
                for e in events
                if e.kind == "kernel" and ms_keys <= set(e.args)
            ]

        want = ms_args(tr.events)
        assert want
        jsonl = tmp_path / "t.jsonl"
        write_jsonl(tr, str(jsonl))
        events, _ = load_trace(str(jsonl))
        assert ms_args(events) == want
        chrome = tmp_path / "t.json"
        write_chrome(tr, str(chrome))
        events, _ = load_trace(str(chrome))
        assert ms_args(events) == want


# ----------------------------------------------------------------------
# ring buffer bound
# ----------------------------------------------------------------------

class TestRingBuffer:
    def test_capacity_bounds_memory_on_long_run(self, medium_kron):
        src = int(np.argmax(np.diff(medium_kron.row)))
        tracer = Tracer(capacity=64)
        result, tr = traced_sssp(
            medium_kron, src, method="rdbs", tracer=tracer
        )
        assert tr is tracer
        assert len(tr.events) == 64
        assert tr.dropped > 0
        # newest events survive (oldest-first eviction)
        assert result.extra["buckets"] > 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------

class TestExport:
    @pytest.fixture()
    def tr(self, small_kron, kron_source):
        _, tr = traced_sssp(small_kron, kron_source, method="rdbs")
        return tr

    def test_chrome_export_is_valid_trace_event_json(self, tr, tmp_path):
        path = tmp_path / "t.json"
        write_chrome(tr, str(path))
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"
        phases = set()
        for ev in doc["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(ev)
            phases.add(ev["ph"])
            if ev["ph"] != "M":
                assert isinstance(ev["ts"], (int, float)) and ev["ts"] >= 0
            if ev["ph"] == "X":
                assert ev["dur"] >= 0
        assert {"X", "C", "i", "M"} <= phases
        # the acceptance criterion: at least one bucket span with Δ/ε args
        bucket_spans = [
            ev for ev in doc["traceEvents"]
            if ev["ph"] == "X" and ev.get("cat") == "bucket"
        ]
        assert bucket_spans
        assert {"delta", "epsilon", "lo", "hi"} <= set(bucket_spans[0]["args"])

    def test_chrome_round_trip(self, tr, tmp_path):
        path = tmp_path / "t.json"
        write_chrome(tr, str(path))
        events, meta = load_trace(str(path))
        assert len(events) == len(tr.events)
        assert meta["method"] == "rdbs"
        assert [e.kind for e in events] == [e.kind for e in tr.events]

    def test_jsonl_round_trip_exact(self, tr, tmp_path):
        path = tmp_path / "t.jsonl"
        write_jsonl(tr, str(path))
        events, meta = load_trace(str(path))
        assert events == list(tr.events)
        assert meta["method"] == "rdbs"

    def test_summary_renders(self, tr):
        text = format_summary(tr)
        assert "kernels" in text and "buckets" in text
        assert "Δ_i" in text

    def test_to_chrome_accepts_plain_event_lists(self):
        events = [TraceEvent("mark", "hello", 1.0, device=-1)]
        doc = to_chrome(events)
        names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "i"]
        assert "mark:hello" in names


# ----------------------------------------------------------------------
# chaos events (breaker transitions, hedges, sheds) in the trace
# ----------------------------------------------------------------------

class TestChaosEvents:
    @pytest.fixture()
    def chaos_tr(self, small_kron):
        from repro.serve import ServeConfig, serve_traffic

        cfg = ServeConfig(
            num_queries=60, seed=5, p2p_fraction=0.7, tolerance=0.05,
            source_pool=5, cold_fraction=0.4, landmarks=3, shards=2,
            chaos="blackout", deadline_ms=0.1, relaxed_tolerance=0.9,
        )
        with tracing() as tr:
            report = serve_traffic(small_kron, cfg)
        assert report.ok
        tr.meta.update(graph="kron", method="serve")
        return tr

    def test_breaker_and_shed_events_emitted(self, chaos_tr):
        names = [e.name for e in chaos_tr.events if e.kind == "chaos"]
        assert "breaker_open" in names
        assert "breaker_half_open" in names
        assert "hedge" in names
        assert "shed" in names
        for e in chaos_tr.events:
            if e.kind == "chaos":
                assert e.device == -1  # chaos lives on the host timeline
                assert e.dur_ms == 0.0  # instants, not spans

    def test_jsonl_round_trip_preserves_chaos_events(self, chaos_tr, tmp_path):
        path = tmp_path / "chaos.jsonl"
        write_jsonl(chaos_tr, str(path))
        events, _meta = load_trace(str(path))
        assert events == list(chaos_tr.events)

    def test_chrome_round_trip_strips_chaos_prefix(self, chaos_tr, tmp_path):
        path = tmp_path / "chaos.json"
        write_chrome(chaos_tr, str(path))
        doc = json.loads(path.read_text())
        instants = [e["name"] for e in doc["traceEvents"]
                    if e.get("cat") == "chaos"]
        assert any(n == "chaos:breaker_open" for n in instants)
        events, _meta = load_trace(str(path))
        names = [e.name for e in events if e.kind == "chaos"]
        assert "breaker_open" in names  # prefix stripped on load
        assert not any(n.startswith("chaos:") for n in names)

    def test_summary_has_chaos_section(self, chaos_tr):
        text = format_summary(chaos_tr)
        assert "chaos (" in text
        assert "breaker_open" in text
        assert "shed" in text
        # the chaos section survives an export/import cycle too
        events = list(chaos_tr.events)
        assert "chaos (" in format_summary(events)

    def test_chaos_off_session_has_no_chaos_events(self, small_kron):
        from repro.serve import ServeConfig, serve_traffic

        with tracing() as tr:
            serve_traffic(small_kron, ServeConfig(
                num_queries=30, seed=5, source_pool=4, landmarks=2, shards=2
            ))
        assert not [e for e in tr.events if e.kind == "chaos"]
        assert "chaos (" not in format_summary(tr)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

class TestCLI:
    def test_trace_run_summary_export(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "t.json"
        assert main(["trace", "run", "kron:8,8", "--method", "rdbs",
                     "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        assert main(["trace", "summary", str(out)]) == 0
        assert "buckets" in capsys.readouterr().out
        assert main(["trace", "export", str(out), "--format", "jsonl",
                     "--out", str(tmp_path / "t.jsonl")]) == 0
        events, _ = load_trace(str(tmp_path / "t.jsonl"))
        assert events

    def test_trace_run_with_fault_plan(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "f.jsonl"
        assert main(["trace", "run", "kron:8,8", "--method", "rdbs",
                     "--plan", "lost-updates", "--out", str(out)]) == 0
        events, meta = load_trace(str(out))
        assert meta["plan"] == "lost-updates"
        assert any(e.kind == "fault" for e in events)

    def test_trace_run_capacity_flag(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "t.jsonl"
        assert main(["trace", "run", "kron:8,8", "--capacity", "32",
                     "--out", str(out)]) == 0
        events, meta = load_trace(str(out))
        assert len(events) == 32
        assert meta["dropped"] > 0

    def test_bench_run_trace_requires_serial(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["bench", "run", "--suite", "quick", "--jobs", "2",
                  "--trace", str(tmp_path / "x.json"),
                  "--out", str(tmp_path / "b.json")])

    def test_faults_trace_flag(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "f.json"
        rc = main(["faults", "kron:8,8", "--method", "rdbs",
                   "--plan", "lost-updates", "--seed", "0",
                   "--trace", str(out)])
        assert rc == 0
        events, _ = load_trace(str(out))
        assert any(e.kind == "fault" for e in events)
