"""Tests for the coalescing model, device arrays and the cache model."""

import numpy as np
import pytest

from repro.gpusim import (
    BumpAllocator,
    CacheModel,
    DeviceArray,
    GPUDevice,
    V100,
    coalesce,
    reuse_gaps,
)


class TestBumpAllocator:
    def test_alignment_and_no_overlap(self):
        a = BumpAllocator()
        p1 = a.allocate(100)
        p2 = a.allocate(100)
        assert p1 % 128 == 0
        assert p2 % 128 == 0
        assert p2 >= p1 + 128  # padded + guard line

    def test_monotonic(self):
        a = BumpAllocator()
        ptrs = [a.allocate(64) for _ in range(10)]
        assert ptrs == sorted(ptrs)


class TestDeviceArray:
    def test_addresses(self):
        arr = DeviceArray(np.zeros(4, dtype=np.float64), 1024)
        assert list(arr.addresses(np.array([0, 1, 3]))) == [1024, 1032, 1048]
        assert arr.itemsize == 8
        assert arr.size == 4
        assert arr.nbytes == 32


class TestCoalesce:
    def test_fully_coalesced_warp(self):
        """32 consecutive float64 loads in one slot -> 8 sector transactions."""
        addrs = np.arange(32) * 8
        slots = np.zeros(32, dtype=np.int64)
        instr, trans, lines = coalesce(addrs, slots, 32, 128)
        assert instr == 1
        assert trans == 8
        assert lines.size == 8

    def test_fully_scattered_warp(self):
        """32 loads each to a different sector -> 32 transactions."""
        addrs = np.arange(32) * 4096
        slots = np.zeros(32, dtype=np.int64)
        instr, trans, _ = coalesce(addrs, slots, 32, 128)
        assert instr == 1
        assert trans == 32

    def test_same_address_in_warp_coalesces(self):
        addrs = np.zeros(32, dtype=np.int64)
        slots = np.zeros(32, dtype=np.int64)
        instr, trans, _ = coalesce(addrs, slots, 32, 128)
        assert instr == 1 and trans == 1

    def test_two_slots_do_not_coalesce_across(self):
        addrs = np.array([0, 0])
        slots = np.array([0, 1])
        instr, trans, _ = coalesce(addrs, slots, 32, 128)
        assert instr == 2 and trans == 2

    def test_empty(self):
        instr, trans, lines = coalesce(
            np.array([], dtype=np.int64), np.array([], dtype=np.int64), 32, 128
        )
        assert instr == 0 and trans == 0 and lines.size == 0

    def test_sector_ids(self):
        addrs = np.array([0, 256])
        slots = np.array([0, 0])
        _, _, sectors = coalesce(addrs, slots, 32, 128)
        assert list(sectors) == [0, 8]  # 32 B sector granularity


class TestReuseGaps:
    def test_first_touch_is_minus_one(self):
        gaps = reuse_gaps(np.array([1, 2, 3]))
        assert list(gaps) == [-1, -1, -1]

    def test_gap_counting(self):
        gaps = reuse_gaps(np.array([7, 8, 7, 7]))
        assert list(gaps) == [-1, -1, 2, 1]

    def test_empty(self):
        assert reuse_gaps(np.array([], dtype=np.int64)).size == 0


class TestCacheModel:
    def test_tiny_working_set_hits(self):
        cache = CacheModel(V100)
        lines = np.tile(np.arange(4), 100)
        hits = cache.hits(lines)
        assert hits[:4].sum() == 0  # cold misses
        assert hits[4:].all()

    def test_streaming_never_hits(self):
        cache = CacheModel(V100)
        lines = np.arange(10_000)
        assert cache.hit_count(lines) == 0

    def test_capacity_sensitivity(self):
        """A working set larger than cache misses; smaller hits."""
        small = CacheModel(V100.scaled_for_workload(1 / 10_000))  # 2560 sectors
        big = CacheModel(V100)  # ~327k sectors
        ws = 6000
        lines = np.tile(np.arange(ws), 5)
        assert big.hit_count(lines) > small.hit_count(lines)

    def test_hit_count_monotone_in_locality(self):
        """Sorted (clustered) reuse beats random interleave at tight capacity."""
        cache = CacheModel(V100.scaled_for_workload(1 / 5000))
        rng = np.random.default_rng(0)
        base = np.repeat(np.arange(2000), 3)
        clustered = np.sort(base)
        shuffled = rng.permutation(base)
        assert cache.hit_count(clustered) >= cache.hit_count(shuffled)

    def test_single_line(self):
        cache = CacheModel(V100)
        lines = np.zeros(50, dtype=np.int64)
        assert cache.hit_count(lines) == 49


class TestDeviceAllocation:
    def test_alloc_copies(self):
        dev = GPUDevice(V100)
        src = np.arange(4, dtype=np.float64)
        arr = dev.alloc(src)
        src[0] = 99
        assert arr.data[0] == 0

    def test_upload_wraps(self):
        dev = GPUDevice(V100)
        src = np.arange(4, dtype=np.float64)
        arr = dev.upload(src)
        assert arr.data is src or arr.data.base is src

    def test_distinct_addresses(self):
        dev = GPUDevice(V100)
        a = dev.zeros(10)
        b = dev.zeros(10)
        assert a.base_address != b.base_address

    def test_full(self):
        dev = GPUDevice(V100)
        arr = dev.full(5, np.inf)
        assert np.all(np.isinf(arr.data))
