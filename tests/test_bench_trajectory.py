"""Tests for the continuous-benchmarking layer (repro.bench.trajectory)."""

import json
import math

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    BenchRecord,
    SchemaVersionError,
    coerce_records,
    compare_records,
    format_diff,
    load_trajectory,
    record_from_result,
    record_from_run,
    run_method,
    write_trajectory,
)
from repro.bench.trajectory import MIN_WALL_SECONDS
from repro.graphs import kronecker


def make_record(**over) -> BenchRecord:
    base = dict(
        dataset="g",
        method="rdbs",
        gpu="V100",
        num_sources=2,
        time_ms=1.25,
        gteps=0.8,
        update_ratio=1.5,
        counters={"inst_executed_atomics": 100, "barriers": 7},
        host_seconds=2.0,
    )
    base.update(over)
    return BenchRecord(**base)


@pytest.fixture(scope="module")
def small_run():
    g = kronecker(7, 6, weights="int", seed=3)
    return run_method(g.name, "rdbs", graph=g, sources=[0])


class TestRecords:
    def test_run_serialization(self, small_run):
        rec = record_from_run(small_run)
        assert rec.key == (small_run.dataset, "rdbs", small_run.gpu)
        assert rec.time_ms == small_run.time_ms
        assert rec.counters["kernel_launches"] > 0
        assert rec.host_seconds > 0
        # everything JSON-safe, including the counter ints
        json.dumps(rec.as_dict())

    def test_nan_ratio_round_trips(self):
        rec = make_record(update_ratio=float("nan"))
        d = rec.as_dict()
        assert d["update_ratio"] is None
        back = BenchRecord.from_dict(d)
        assert math.isnan(back.update_ratio)

    def test_record_from_result_duck_typing(self, small_run):
        rec = record_from_result(
            small_run.results[0], dataset="g", method="custom", gpu="V100"
        )
        assert rec.method == "custom"
        assert rec.counters

    def test_coerce_rejects_unknown(self):
        with pytest.raises(TypeError, match="cannot serialize"):
            coerce_records([object()])


class TestTrajectoryFiles:
    def test_write_load_round_trip(self, tmp_path, small_run):
        path = tmp_path / "BENCH_t.json"
        write_trajectory(path, [small_run], suite="t")
        meta, records = load_trajectory(path)
        assert meta["schema_version"] == SCHEMA_VERSION
        assert meta["suite"] == "t"
        assert "git_sha" in meta
        assert len(records) == 1
        # round-trip check: the reloaded trajectory is clean vs the run
        assert compare_records(records, [record_from_run(small_run)]).ok

    def test_schema_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "old.json"
        doc = {"schema_version": SCHEMA_VERSION + 1, "records": []}
        path.write_text(json.dumps(doc))
        with pytest.raises(SchemaVersionError, match="schema_version"):
            load_trajectory(path)

    def test_tables_embedded(self, tmp_path):
        path = write_trajectory(
            tmp_path / "t.json", [],
            suite="t",
            tables=[{"title": "x", "headers": ["a"], "rows": [[1]]}],
        )
        doc = json.loads(path.read_text())
        assert doc["tables"][0]["rows"] == [[1]]


class TestComparison:
    def test_identical_is_clean(self):
        rep = compare_records([make_record()], [make_record()])
        assert rep.ok
        assert not rep.failures

    def test_counter_delta_detected(self):
        cur = make_record(
            counters={"inst_executed_atomics": 101, "barriers": 7}
        )
        rep = compare_records([make_record()], [cur])
        assert not rep.ok
        bad = [c.field for c in rep.failures]
        assert bad == ["counters.inst_executed_atomics"]

    def test_simulated_time_drift_detected_both_directions(self):
        # deterministic quantities gate on ANY drift, improvements included:
        # a faster simulated time still means the baseline must be refreshed
        for factor in (0.9, 1.1):
            cur = make_record(time_ms=1.25 * factor)
            rep = compare_records([make_record()], [cur])
            assert not rep.ok, factor
            assert any(c.field == "time_ms" for c in rep.failures)

    def test_missing_counter_key_detected(self):
        cur = make_record(counters={"inst_executed_atomics": 100})
        rep = compare_records([make_record()], [cur])
        assert any(c.field == "counters.barriers" for c in rep.failures)

    def test_wall_clock_within_tolerance_passes(self):
        cur = make_record(host_seconds=2.0 * 1.2)  # +20% < default 25%
        assert compare_records([make_record()], [cur]).ok

    def test_wall_clock_outside_tolerance_fails(self):
        cur = make_record(host_seconds=2.0 * 1.6)
        rep = compare_records([make_record()], [cur])
        assert not rep.ok
        assert [c.field for c in rep.failures] == ["host_seconds"]
        # ... unless the wall tier is widened or disabled
        assert compare_records(
            [make_record()], [cur], wall_tolerance=1.0
        ).ok
        assert compare_records(
            [make_record()], [cur], check_wall=False
        ).ok

    def test_wall_clock_speedup_never_fails(self):
        cur = make_record(host_seconds=0.2)
        assert compare_records([make_record()], [cur]).ok

    def test_tiny_wall_cells_not_gated(self):
        base = make_record(host_seconds=MIN_WALL_SECONDS / 10)
        cur = make_record(host_seconds=MIN_WALL_SECONDS / 2)  # 5x slower
        assert compare_records([base], [cur]).ok

    def test_missing_and_unexpected_cells(self):
        other = make_record(method="adds")
        rep = compare_records([make_record()], [other])
        assert not rep.ok
        assert rep.missing == [("g", "rdbs", "V100")]
        assert rep.unexpected == [("g", "adds", "V100")]
        assert "MISSING" in rep.summary()
        assert "UNEXPECTED" in rep.summary()

    def test_nan_update_ratio_equal(self):
        a = make_record(update_ratio=float("nan"))
        b = make_record(update_ratio=float("nan"))
        assert compare_records([a], [b]).ok


class TestDiff:
    def test_diff_table_shape(self):
        base = [make_record(), make_record(method="adds")]
        cur = [
            make_record(counters={"inst_executed_atomics": 101, "barriers": 7}),
            make_record(method="bl"),
        ]
        text = format_diff(base, cur, labels=("a", "b"))
        headline, deltas = text.split("\n\n")
        lines = headline.splitlines()
        assert lines[0].startswith("bench diff")
        assert "verdict" in lines[1]
        # three distinct cells: rdbs (paired), adds (only in a), bl (only in b)
        assert len(lines) == 3 + 3
        assert "DRIFT" in headline
        assert "only in" in headline
        # the appended delta table covers paired cells only
        assert deltas.splitlines()[0].startswith(
            "instruction / transaction deltas"
        )
        assert len(deltas.splitlines()) == 3 + 1

    def test_diff_clean_is_ok(self):
        text = format_diff([make_record()], [make_record()])
        assert "ok" in text and "DRIFT" not in text


class TestCounterDeltas:
    """The per-cell instruction/transaction delta table (bench diff)."""

    def test_sums_components_and_reports_percentages(self):
        from repro.bench.trajectory import format_counter_deltas

        old = make_record(counters={
            "inst_executed_global_loads": 60,
            "inst_executed_global_stores": 30,
            "inst_executed_atomics": 10,
            "global_load_transactions": 150,
            "global_store_transactions": 50,
        })
        new = make_record(counters={
            "inst_executed_global_loads": 40,
            "inst_executed_global_stores": 5,
            "inst_executed_atomics": 10,
            # the multisplit path trades ALU/branch work for ballots,
            # which count toward the instruction total
            "inst_executed_ballots": 5,
            "global_load_transactions": 150,
            "global_store_transactions": 30,
        })
        text = format_counter_deltas([old], [new], labels=("a", "b"))
        row = text.splitlines()[-1]
        # instructions: 100 -> 60 (-40%); transactions: 200 -> 180 (-10%)
        assert "100" in row and "60" in row and "-40.00%" in row
        assert "200" in row and "180" in row and "-10.00%" in row

    def test_missing_counter_keys_count_as_zero(self):
        from repro.bench.trajectory import format_counter_deltas

        text = format_counter_deltas(
            [make_record(counters={})], [make_record(counters={})]
        )
        row = text.splitlines()[-1]
        assert "+0.00%" in row

    def test_unpaired_cells_excluded(self):
        from repro.bench.trajectory import format_counter_deltas

        text = format_counter_deltas(
            [make_record(method="adds")], [make_record(method="bl")]
        )
        # title + header + separator, no data rows
        assert len(text.splitlines()) == 3
