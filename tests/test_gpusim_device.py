"""Tests for the simulated device: kernel ops, counters, time accounting."""

import numpy as np
import pytest

from repro.gpusim import (
    GPUDevice,
    T4,
    V100,
    grid_stride,
    subset_assignment,
    thread_per_item,
    thread_per_vertex_edges,
)


@pytest.fixture
def dev():
    return GPUDevice(V100)


class TestGather:
    def test_returns_values_and_counts_loads(self, dev):
        arr = dev.alloc(np.arange(100, dtype=np.float64))
        idx = np.arange(64, dtype=np.int64)
        with dev.launch("k") as k:
            a = thread_per_item(64)
            vals = k.gather(arr, idx, a)
        assert np.array_equal(vals, np.arange(64, dtype=np.float64))
        c = dev.counters.totals
        assert c.inst_executed_global_loads == 2  # 2 warps
        assert c.global_load_transactions == 16  # 64 * 8B / 32B
        assert c.kernel_launches == 1

    def test_index_mismatch_rejected(self, dev):
        arr = dev.zeros(10)
        with dev.launch("k") as k:
            a = thread_per_item(4)
            with pytest.raises(ValueError):
                k.gather(arr, np.array([0, 1]), a)


class TestScatter:
    def test_writes_and_counts_stores(self, dev):
        arr = dev.zeros(64)
        with dev.launch("k") as k:
            a = thread_per_item(32)
            k.scatter(arr, np.arange(32), np.ones(32), a)
        assert arr.data[:32].sum() == 32
        c = dev.counters.totals
        assert c.inst_executed_global_stores == 1
        assert c.global_store_transactions == 8


class TestAtomicMin:
    def test_semantics(self, dev):
        arr = dev.alloc(np.array([10.0, 10.0]))
        with dev.launch("k") as k:
            a = thread_per_item(3)
            old, upd = k.atomic_min(
                arr, np.array([0, 0, 1]), np.array([4.0, 6.0, 12.0]), a
            )
        assert list(old) == [10.0, 4.0, 10.0]
        assert list(upd) == [True, False, False]
        assert list(arr.data) == [4.0, 10.0]

    def test_counts_atomics_and_conflicts(self, dev):
        arr = dev.zeros(4)
        arr.data[:] = 100.0
        with dev.launch("k") as k:
            a = thread_per_item(8)
            idx = np.array([0, 0, 0, 0, 1, 2, 3, 3])
            k.atomic_min(arr, idx, np.arange(8, dtype=float), a)
        c = dev.counters.totals
        assert c.inst_executed_atomics == 1
        # 8 ops to 4 distinct addresses -> 4 serialized conflicts
        assert c.atomic_conflicts == 4

    def test_empty(self, dev):
        arr = dev.zeros(4)
        with dev.launch("k") as k:
            a = thread_per_item(0)
            old, upd = k.atomic_min(arr, np.array([], dtype=np.int64), np.array([]), a)
        assert old.size == 0 and upd.size == 0


class TestBranch:
    def test_uniform_branch_not_divergent(self, dev):
        with dev.launch("k") as k:
            a = thread_per_item(32)
            k.branch(a, np.ones(32, dtype=bool))
        c = dev.counters.totals
        assert c.branch_instructions == 1
        assert c.divergent_branches == 0

    def test_mixed_branch_divergent(self, dev):
        with dev.launch("k") as k:
            a = thread_per_item(32)
            taken = np.zeros(32, dtype=bool)
            taken[::2] = True
            k.branch(a, taken, cost_taken=2, cost_not_taken=3)
        c = dev.counters.totals
        assert c.divergent_branches == 1
        # divergent slot issues both paths: 2 + 3
        assert c.inst_executed_other == 5

    def test_mask_mismatch_rejected(self, dev):
        with dev.launch("k") as k:
            a = thread_per_item(4)
            with pytest.raises(ValueError):
                k.branch(a, np.ones(3, dtype=bool))


class TestSubsetAssignment:
    def test_subset_counts(self):
        a = thread_per_vertex_edges(np.array([4, 4]))
        mask = np.zeros(8, dtype=bool)
        mask[:2] = True  # only vertex 0's first two edges
        sub = subset_assignment(a, mask)
        assert sub.num_items == 2
        assert sub.num_slots == 2
        assert sub.max_steps == 2

    def test_empty_subset(self):
        a = thread_per_item(16)
        sub = subset_assignment(a, np.zeros(16, dtype=bool))
        assert sub.num_items == 0 and sub.num_slots == 0


class TestTimeAndEvents:
    def test_launch_charges_overhead(self, dev):
        with dev.launch("noop"):
            pass
        assert dev.time_s == pytest.approx(V100.kernel_launch_s)

    def test_device_launch_no_host_cost(self, dev):
        with dev.launch("noop", host_launch=False):
            pass
        assert dev.time_s == 0.0

    def test_barrier(self, dev):
        dev.barrier()
        assert dev.time_s == pytest.approx(V100.barrier_s)
        assert dev.counters.totals.barriers == 1

    def test_child_launch_and_async_round(self, dev):
        with dev.launch("k") as k:
            k.child_launch(10)
            k.async_round(5)
        c = dev.counters.totals
        assert c.child_kernel_launches == 10
        assert c.async_rounds == 5
        expected = (
            V100.kernel_launch_s + 10 * V100.child_launch_s + 5 * V100.async_round_s
        )
        assert dev.time_s == pytest.approx(expected)

    def test_more_work_takes_longer(self, dev):
        arr = dev.alloc(np.zeros(1 << 16))
        idx_small = np.arange(1 << 10, dtype=np.int64)
        idx_big = np.arange(1 << 16, dtype=np.int64)
        with dev.launch("small") as k:
            k.gather(arr, idx_small, grid_stride(idx_small.size, 1024))
        t_small = k.time_s
        with dev.launch("big") as k:
            k.gather(arr, idx_big, grid_stride(idx_big.size, 1024))
        assert k.time_s > t_small

    def test_t4_slower_than_v100_on_memory_bound(self):
        times = {}
        for spec in (V100, T4):
            dev = GPUDevice(spec)
            arr = dev.alloc(np.zeros(1 << 18))
            idx = np.random.default_rng(0).integers(0, 1 << 18, 1 << 18)
            with dev.launch("k") as k:
                k.gather(arr, idx, grid_stride(idx.size, 8192))
            times[spec.name] = dev.time_s - spec.kernel_launch_s
        assert times["T4"] > times["V100"]

    def test_reset_clock(self, dev):
        dev.barrier()
        dev.reset_clock()
        assert dev.time_s == 0.0
        assert dev.counters.totals.barriers == 0

    def test_elapsed_ms(self, dev):
        dev.barrier()
        assert dev.elapsed_ms == pytest.approx(V100.barrier_s * 1e3)


class TestCriticalPath:
    def test_imbalanced_kernel_slower_than_balanced(self, dev):
        """Same edges: one hub thread vs spread over a block — the SIMT
        critical path makes the hub mapping slower (motivation 2)."""
        from repro.gpusim import threads_per_vertex_edges

        arr = dev.alloc(np.zeros(1 << 14))
        counts = np.array([4096])
        idx = np.arange(4096, dtype=np.int64)
        with dev.launch("hub") as k:
            k.gather(arr, idx, thread_per_vertex_edges(counts))
        t_hub = k.time_s
        with dev.launch("block") as k:
            k.gather(arr, idx, threads_per_vertex_edges(counts, 256))
        t_block = k.time_s
        assert t_hub > 2 * t_block
