"""Tests for repro.faults: injection determinism and the recovery runtime."""

import numpy as np
import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    GPU_METHODS,
    InjectedKernelAbort,
    RecoveryPolicy,
    faulty_sssp,
    get_plan,
    plan_names,
    verify_distances_host,
)
from repro.graphs import (
    CSRGraph,
    GraphValidationError,
    from_edges,
    kronecker,
    largest_component_vertices,
    path,
)
from repro.graphs.generators import rmat_edges
from repro.gpusim import V100
from repro.gpusim.multi import multi_gpu_sssp
from repro.sssp import (
    ConvergenceError,
    DistanceMismatch,
    dijkstra,
    pq_delta_star_sssp,
    rdbs_sssp,
    validate_distances,
)

SPEC = V100.scaled_for_workload(1 / 64)

KRON = kronecker(8, 8, weights="int", seed=0)
KRON_SRC = int(largest_component_vertices(KRON)[0])


def _rmat_graph():
    rng = np.random.default_rng(7)
    src, dst = rmat_edges(7, 6 * 2**7, rng=rng)
    w = rng.integers(1, 100, size=src.size).astype(float)
    return from_edges(src, dst, w, num_vertices=2**7, name="rmat7")


RMAT = _rmat_graph()
RMAT_SRC = int(largest_component_vertices(RMAT)[0])

ALL_PLANS = ["lost-updates", "stale-reads", "bitflips", "kernel-aborts", "chaos"]


# ----------------------------------------------------------------------
# plans
# ----------------------------------------------------------------------
class TestPlans:
    def test_registry_names(self):
        names = plan_names()
        for p in ALL_PLANS + ["exchange-drop", "exchange-dup"]:
            assert p in names

    def test_get_plan_reseed(self):
        p = get_plan("bitflips", seed=42)
        assert p.seed == 42
        assert get_plan("bitflips").seed != 42 or get_plan("bitflips") is not p

    def test_unknown_plan_rejected(self):
        with pytest.raises(ValueError, match="unknown fault plan"):
            get_plan("not-a-plan")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="not-a-kind")
        with pytest.raises(ValueError):
            FaultSpec(kind="bitflip", count=-1)
        with pytest.raises(ValueError):
            FaultSpec(kind="bitflip", period=0)
        with pytest.raises(ValueError):
            FaultSpec(kind="bitflip", bit=64)

    def test_budget(self):
        plan = FaultPlan(
            name="two", specs=(FaultSpec(kind="bitflip", count=3),
                               FaultSpec(kind="lost-update", count=4)),
        )
        assert plan.total_budget == 7


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    @pytest.mark.parametrize("plan", ["lost-updates", "chaos"])
    def test_same_seed_same_report(self, plan):
        r1, rep1 = faulty_sssp(
            KRON, KRON_SRC, method="rdbs", plan=plan, seed=3, spec=SPEC
        )
        r2, rep2 = faulty_sssp(
            KRON, KRON_SRC, method="rdbs", plan=plan, seed=3, spec=SPEC
        )
        assert rep1.injected > 0
        assert rep1.to_dict() == rep2.to_dict()
        assert np.array_equal(r1.dist, r2.dist)

    def test_different_seed_differs(self):
        _, rep1 = faulty_sssp(
            KRON, KRON_SRC, method="rdbs", plan="chaos", seed=0, spec=SPEC
        )
        _, rep2 = faulty_sssp(
            KRON, KRON_SRC, method="rdbs", plan="chaos", seed=1, spec=SPEC
        )
        assert rep1.to_dict() != rep2.to_dict()


# ----------------------------------------------------------------------
# recovery: every plan on every GPU method ends exact
# ----------------------------------------------------------------------
class TestRecovery:
    @pytest.mark.parametrize("plan", ALL_PLANS)
    @pytest.mark.parametrize(
        "method", ["rdbs", "basyn+pro+adwl", "adds", "bl", "near-far",
                   "harish-narayanan"]
    )
    def test_recovered_distances_exact(self, method, plan):
        assert method in GPU_METHODS
        r, rep = faulty_sssp(
            KRON, KRON_SRC, method=method, plan=plan, seed=0, spec=SPEC
        )
        validate_distances(KRON, KRON_SRC, r.dist)
        assert rep.injected > 0
        assert rep.escaped == 0
        assert rep.verified is True
        assert r.faults is rep

    def test_checkpoint_rollback_on_kron(self):
        r, rep = faulty_sssp(
            KRON, KRON_SRC, method="rdbs", plan="kernel-aborts",
            seed=0, spec=SPEC,
        )
        validate_distances(KRON, KRON_SRC, r.dist)
        assert rep.rollbacks >= 1
        assert rep.escaped == 0

    def test_checkpoint_rollback_on_rmat(self):
        r, rep = faulty_sssp(
            RMAT, RMAT_SRC, method="rdbs", plan="kernel-aborts",
            seed=1, spec=SPEC,
        )
        validate_distances(RMAT, RMAT_SRC, r.dist)
        assert rep.rollbacks >= 1
        assert rep.escaped == 0

    def test_rmat_chaos_recovers(self):
        r, rep = faulty_sssp(
            RMAT, RMAT_SRC, method="rdbs", plan="chaos", seed=0, spec=SPEC
        )
        validate_distances(RMAT, RMAT_SRC, r.dist)
        assert rep.escaped == 0

    def test_retry_budget_spent_continues_without_rollback(self):
        """With max_retries=0 an abort is caught but never rolled back:
        the runtime logs the budget exhaustion, resumes from its current
        (still-monotone) state, and the final repair sweeps still deliver
        exact distances."""
        policy = RecoveryPolicy(max_retries=0)
        r, rep = faulty_sssp(
            KRON, KRON_SRC, method="rdbs", plan="kernel-aborts",
            seed=0, spec=SPEC, recovery=policy,
        )
        validate_distances(KRON, KRON_SRC, r.dist)
        assert rep.injected > 0
        assert rep.rollbacks == 0
        assert any(
            "retry budget spent; continuing without rollback" in action
            for action in rep.actions
        )
        assert rep.escaped == 0
        assert rep.verified is True


# ----------------------------------------------------------------------
# recovery off: faults detected but uncorrected
# ----------------------------------------------------------------------
class TestNoRecovery:
    @pytest.mark.parametrize("plan", ["lost-updates", "stale-reads", "bitflips"])
    def test_divergence_detected(self, plan):
        r, rep = faulty_sssp(
            KRON, KRON_SRC, method="rdbs", plan=plan, seed=0,
            spec=SPEC, recovery=False,
        )
        assert rep.injected > 0
        assert rep.escaped == rep.injected
        assert rep.verified is False
        with pytest.raises(DistanceMismatch):
            validate_distances(KRON, KRON_SRC, r.dist)

    def test_abort_is_fail_stop(self):
        with pytest.raises(InjectedKernelAbort):
            faulty_sssp(
                KRON, KRON_SRC, method="rdbs", plan="kernel-aborts",
                seed=0, spec=SPEC, recovery=False,
            )


# ----------------------------------------------------------------------
# watchdog: async stall degrades BASYN to synchronous execution
# ----------------------------------------------------------------------
class TestWatchdog:
    def test_degrades_to_sync_and_stays_exact(self):
        policy = RecoveryPolicy(watchdog_min_rounds=1, watchdog_factor=0)
        r, rep = faulty_sssp(
            KRON, KRON_SRC, method="rdbs", plan="lost-updates",
            seed=0, spec=SPEC, recovery=policy,
        )
        assert rep.degraded is True
        assert rep.escaped == 0
        validate_distances(KRON, KRON_SRC, r.dist)

    def test_no_degrade_with_roomy_budget(self):
        _, rep = faulty_sssp(
            KRON, KRON_SRC, method="rdbs", plan="lost-updates",
            seed=0, spec=SPEC,
        )
        assert rep.degraded is False


# ----------------------------------------------------------------------
# zero cost with injection off
# ----------------------------------------------------------------------
class TestZeroCostOff:
    def test_counters_identical_under_empty_plan(self):
        plain = rdbs_sssp(KRON, KRON_SRC, spec=SPEC)
        inj = FaultInjector(FaultPlan(name="empty", specs=()))
        with inj.attached():
            observed = rdbs_sssp(KRON, KRON_SRC, spec=SPEC)
        assert inj.report.injected == 0
        assert np.array_equal(plain.dist, observed.dist)
        assert plain.counters.totals == observed.counters.totals
        assert plain.time_ms == observed.time_ms

    def test_recovery_off_runs_have_no_report_side_channel(self):
        r = rdbs_sssp(KRON, KRON_SRC, spec=SPEC)
        assert r.faults is None


# ----------------------------------------------------------------------
# multi-GPU exchange faults
# ----------------------------------------------------------------------
class TestExchangeFaults:
    def _exact(self, dist, ref):
        return np.array_equal(np.isfinite(dist), np.isfinite(ref)) and (
            np.allclose(
                dist[np.isfinite(ref)], ref[np.isfinite(ref)],
                rtol=1e-9, atol=1e-9,
            )
        )

    def test_drop_recovers(self):
        ref = dijkstra(KRON, KRON_SRC).dist
        inj = FaultInjector("exchange-drop")
        with inj.attached():
            r = multi_gpu_sssp(
                KRON, KRON_SRC, num_gpus=2, spec=SPEC, recovery=True
            )
        assert inj.report.injected > 0
        assert r.repair_rounds >= 1
        assert self._exact(r.dist, ref)

    def test_drop_without_recovery_diverges(self):
        ref = dijkstra(KRON, KRON_SRC).dist
        inj = FaultInjector("exchange-drop")
        with inj.attached():
            r = multi_gpu_sssp(
                KRON, KRON_SRC, num_gpus=2, spec=SPEC, recovery=False
            )
        assert inj.report.injected > 0
        assert not self._exact(r.dist, ref)

    def test_duplicate_is_harmless(self):
        ref = dijkstra(KRON, KRON_SRC).dist
        inj = FaultInjector("exchange-dup")
        with inj.attached():
            r = multi_gpu_sssp(
                KRON, KRON_SRC, num_gpus=2, spec=SPEC, recovery=True
            )
        assert inj.report.injected > 0
        assert r.repair_rounds == 0
        assert self._exact(r.dist, ref)


# ----------------------------------------------------------------------
# satellite: shared ConvergenceError
# ----------------------------------------------------------------------
class TestConvergenceError:
    def test_fields_and_message(self):
        exc = ConvergenceError(
            "bucket limit exceeded", method="rdbs", iterations=7,
            frontier=123, delta=0.5,
        )
        assert isinstance(exc, RuntimeError)
        assert exc.reason == "bucket limit exceeded"
        assert exc.method == "rdbs"
        assert exc.iterations == 7
        assert exc.frontier == 123
        assert exc.delta == 0.5
        assert "bucket limit exceeded" in str(exc)
        assert "rdbs" in str(exc)

    def test_pq_delta_batch_limit(self):
        with pytest.raises(ConvergenceError, match="batch limit") as ei:
            pq_delta_star_sssp(path(50), 0, max_batches=1)
        assert ei.value.method == "pq-delta*"
        assert ei.value.iterations == 1

    def test_legacy_runtimeerror_catch_still_works(self):
        with pytest.raises(RuntimeError, match="bucket limit"):
            rdbs_sssp(path(50), 0, delta=0.01, max_buckets=2)


# ----------------------------------------------------------------------
# satellite: bucket-overflow rescale retry
# ----------------------------------------------------------------------
class TestBucketRescale:
    def test_rescale_retry_succeeds(self):
        g = path(50)
        r = rdbs_sssp(g, 0, delta=0.2, max_buckets=35)
        assert r.extra["delta_rescaled"] is True
        assert r.extra["buckets"] <= 35
        validate_distances(g, 0, r.dist)

    def test_hopeless_case_still_raises(self):
        with pytest.raises(ConvergenceError, match="bucket limit"):
            rdbs_sssp(path(50), 0, delta=0.01, max_buckets=2)

    def test_no_rescale_when_unneeded(self):
        g = path(20)
        r = rdbs_sssp(g, 0, delta=1.0)
        assert r.extra["delta_rescaled"] is False


# ----------------------------------------------------------------------
# satellite: CSR weight validation
# ----------------------------------------------------------------------
class TestWeightValidation:
    def test_nan_weight_rejected(self):
        with pytest.raises(GraphValidationError, match="finite"):
            CSRGraph(
                row=np.array([0, 1, 1]), adj=np.array([1]),
                weights=np.array([np.nan]),
            )

    def test_inf_weight_rejected(self):
        with pytest.raises(GraphValidationError, match="finite"):
            CSRGraph(
                row=np.array([0, 1, 1]), adj=np.array([1]),
                weights=np.array([np.inf]),
            )

    def test_negative_weight_still_rejected(self):
        with pytest.raises(GraphValidationError, match="non-negative"):
            CSRGraph(
                row=np.array([0, 1, 1]), adj=np.array([1]),
                weights=np.array([-1.0]),
            )


# ----------------------------------------------------------------------
# host-side verifier
# ----------------------------------------------------------------------
class TestVerifier:
    def test_accepts_exact_distances(self):
        ref = dijkstra(KRON, KRON_SRC).dist
        assert verify_distances_host(KRON, KRON_SRC, ref) is True

    def test_rejects_underestimate(self):
        ref = dijkstra(KRON, KRON_SRC).dist.copy()
        finite = np.flatnonzero(np.isfinite(ref))
        victim = int(finite[finite != KRON_SRC][0])
        ref[victim] = ref[victim] * 1e-6  # witness-less underestimate
        assert verify_distances_host(KRON, KRON_SRC, ref) is False

    def test_rejects_overestimate(self):
        ref = dijkstra(KRON, KRON_SRC).dist.copy()
        finite = np.flatnonzero(np.isfinite(ref))
        victim = int(finite[finite != KRON_SRC][-1])
        ref[victim] = ref[victim] + 100.0
        assert verify_distances_host(KRON, KRON_SRC, ref) is False
