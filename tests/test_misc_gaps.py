"""Gap-filling tests: small surfaces not covered elsewhere."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import dataset_names, from_edges, load
from repro.reorder import attach_heavy_offsets, sort_adjacency_by_weight
from repro.sssp import DeltaController, SSSPResult, sssp
from repro.sssp.cpu_pq_delta import XEON_8269CY


class TestAllSurrogatesLoad:
    def test_every_registered_dataset_builds(self):
        """All 11 surrogates construct and are structurally sane (the big
        soc-TW one included)."""
        for name in dataset_names():
            g = load(name)
            assert g.num_vertices > 0, name
            assert g.num_edges > 0, name
            assert g.weights.min() >= 1.0, name
            # symmetrized: total degree is even
            assert g.num_edges % 2 == 0, name


class TestHeavyOffsetsZeroDegree:
    def test_sorted_check_with_isolated_vertices(self):
        """Zero-degree vertices must not confuse the sortedness check or
        the offset computation."""
        g = from_edges(
            np.array([0, 0, 3]),
            np.array([1, 2, 4]),
            np.array([5.0, 1.0, 2.0]),
            num_vertices=6,  # vertex 5 is isolated
        )
        sg = sort_adjacency_by_weight(g)
        hg = attach_heavy_offsets(sg, 3.0)
        assert hg.heavy_offsets[5] == hg.row[5]
        assert list(hg.light_degrees()) == [1, 0, 0, 1, 0, 0]

    def test_all_heavy(self):
        g = from_edges(np.array([0]), np.array([1]), np.array([10.0]),
                       num_vertices=2)
        hg = attach_heavy_offsets(g, 1.0)
        assert hg.light_degrees().sum() == 0

    def test_all_light(self):
        g = from_edges(np.array([0]), np.array([1]), np.array([0.5]),
                       num_vertices=2)
        hg = attach_heavy_offsets(g, 1.0)
        assert hg.light_degrees().sum() == 1


class TestSSSPResultSurface:
    def test_gteps_zero_time(self):
        r = SSSPResult(dist=np.zeros(3), source=0, method="x", num_edges=10)
        assert r.gteps == 0.0

    def test_repr(self):
        r = SSSPResult(
            dist=np.array([0.0, np.inf]), source=0, method="m",
            graph_name="g", time_ms=1.0,
        )
        text = repr(r)
        assert "m" in text and "reached=1" in text


class TestCpuSpecSurface:
    def test_paper_host(self):
        assert XEON_8269CY.cores == 26
        assert XEON_8269CY.threads == 52


@st.composite
def feedback_seq(draw):
    n = draw(st.integers(2, 12))
    return [
        (draw(st.integers(0, 10_000)), draw(st.integers(0, 10_000)))
        for _ in range(n)
    ]


class TestDeltaControllerProperties:
    @given(seq=feedback_seq(), delta0=st.floats(0.1, 100.0))
    @settings(max_examples=50, deadline=None)
    def test_widths_always_clamped_and_contiguous(self, seq, delta0):
        c = DeltaController(delta0)
        prev_hi = 0.0
        for fb in seq:
            iv = c.next_interval()
            assert iv.lo == pytest.approx(prev_hi)
            assert c.min_delta - 1e-12 <= iv.width <= c.max_delta + 1e-12
            prev_hi = iv.hi
            c.feedback(*fb)

    @given(seq=feedback_seq())
    @settings(max_examples=50, deadline=None)
    def test_epsilon_bounded_by_delta0(self, seq):
        """|ε_i| <= Δ0: both Eq. 1 factors have magnitude <= 1."""
        c = DeltaController(10.0)
        for i, fb in enumerate(seq):
            c.next_interval()
            c.feedback(*fb)
        for i in range(2, len(seq)):
            assert abs(c.epsilon(i)) <= 10.0 + 1e-9


class TestMethodKwargsSurface:
    def test_record_trace_only_where_supported(self):
        from repro.graphs import path

        g = path(6)
        r = sssp(g, 0, method="delta-cpu", record_trace=True)
        assert r.trace is not None

    def test_max_buckets_guard(self):
        from repro.graphs import path
        from repro.sssp import rdbs_sssp

        g = path(50)
        with pytest.raises(RuntimeError, match="bucket limit"):
            rdbs_sssp(g, 0, delta=0.01, max_buckets=2)
