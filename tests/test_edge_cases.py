"""Failure-injection and edge-case tests across all implementations.

Zero-weight edges, equal weights everywhere, extreme weights, parallel
edges, self-loops, disconnected graphs, singleton graphs — the inputs that
break naive Δ-stepping implementations (zero-weight edges famously
livelock light-edge loops that re-queue on non-strict improvement).
"""

import numpy as np
import pytest

from repro.graphs import CSRGraph, from_edges, kronecker
from repro.gpusim import V100
from repro.sssp import method_names, sssp, validate_distances

SPEC = V100.scaled_for_workload(1 / 64)
FAST_METHODS = ["rdbs", "bl", "adds", "near-far", "delta-cpu", "pq-delta*"]


def _kwargs(method):
    gpu = {"rdbs", "bl", "adds", "near-far", "harish-narayanan",
           "basyn", "basyn+pro", "basyn+adwl", "basyn+pro+adwl", "sync-delta"}
    return {"spec": SPEC} if method in gpu else {}


def zero_weight_graph():
    """A graph with several zero-weight edges (including a 0-cycle)."""
    src = np.array([0, 1, 2, 0, 3, 4])
    dst = np.array([1, 2, 0, 3, 4, 5])
    w = np.array([0.0, 0.0, 0.0, 2.0, 0.0, 3.0])
    return from_edges(src, dst, w, num_vertices=6, symmetrize=True)


def equal_weight_graph():
    g = kronecker(6, 6, seed=70)
    return g.with_weights(np.full(g.num_edges, 5.0))


def extreme_weight_graph():
    src = np.array([0, 1, 0])
    dst = np.array([1, 2, 2])
    w = np.array([1e-12, 1e12, 1e15])
    return from_edges(src, dst, w, num_vertices=3, symmetrize=True)


@pytest.mark.parametrize("method", FAST_METHODS)
class TestHostileInputs:
    def test_zero_weight_edges(self, method):
        g = zero_weight_graph()
        r = sssp(g, 0, method=method, **_kwargs(method))
        validate_distances(g, 0, r.dist)
        assert r.dist[2] == 0.0  # reached through the 0-cycle

    def test_all_weights_equal(self, method):
        g = equal_weight_graph()
        r = sssp(g, 0, method=method, **_kwargs(method))
        validate_distances(g, 0, r.dist)

    def test_extreme_weight_range(self, method):
        g = extreme_weight_graph()
        r = sssp(g, 0, method=method, **_kwargs(method))
        validate_distances(g, 0, r.dist)

    def test_two_isolated_vertices(self, method):
        g = CSRGraph(
            row=np.array([0, 0, 0]), adj=np.array([]), weights=np.array([])
        )
        r = sssp(g, 0, method=method, **_kwargs(method))
        assert r.dist[0] == 0.0
        assert np.isinf(r.dist[1])

    def test_single_vertex(self, method):
        g = CSRGraph(row=np.array([0, 0]), adj=np.array([]), weights=np.array([]))
        r = sssp(g, 0, method=method, **_kwargs(method))
        assert list(r.dist) == [0.0]

    def test_many_components(self, method):
        src = np.array([0, 2, 4, 6])
        dst = np.array([1, 3, 5, 7])
        g = from_edges(src, dst, np.ones(4), num_vertices=9, symmetrize=True)
        r = sssp(g, 4, method=method, **_kwargs(method))
        validate_distances(g, 4, r.dist)
        assert np.isfinite(r.dist).sum() == 2


class TestParallelAndSelfEdges:
    def test_parallel_edges_kept_min(self):
        g = from_edges(
            np.array([0, 0, 0]),
            np.array([1, 1, 1]),
            np.array([9.0, 2.0, 5.0]),
            num_vertices=2,
        )
        assert g.num_edges == 1
        r = sssp(g, 0, method="dijkstra")
        assert r.dist[1] == 2.0

    def test_self_loop_never_hurts(self):
        g = from_edges(
            np.array([0, 0]),
            np.array([0, 1]),
            np.array([0.5, 3.0]),
            num_vertices=2,
            drop_self_loops=False,
        )
        for method in ("rdbs", "delta-cpu"):
            r = sssp(g, 0, method=method, **_kwargs(method))
            assert r.dist[0] == 0.0
            assert r.dist[1] == 3.0

    def test_dedup_disabled_parallel_edges_still_correct(self):
        g = from_edges(
            np.array([0, 0]),
            np.array([1, 1]),
            np.array([9.0, 2.0]),
            num_vertices=2,
            dedup=False,
        )
        r = sssp(g, 0, method="rdbs", spec=SPEC)
        assert r.dist[1] == 2.0


class TestSourceChoices:
    def test_every_source_of_a_small_graph(self):
        g = kronecker(5, 6, weights="int", seed=71)
        for s in range(g.num_vertices):
            r = sssp(g, s, method="rdbs", spec=SPEC)
            validate_distances(g, s, r.dist)

    def test_leaf_source_on_star(self):
        from repro.graphs import star

        g = star(20)
        r = sssp(g, 5, method="rdbs", spec=SPEC)
        assert r.dist[5] == 0.0
        assert r.dist[0] == 1.0
        assert r.dist[7] == 2.0


class TestDeterminism:
    @pytest.mark.parametrize("method", ["rdbs", "adds", "bl"])
    def test_same_input_same_measurements(self, method):
        """The simulator is fully deterministic: identical runs produce
        identical times and counters."""
        g = kronecker(7, 8, weights="int", seed=72)
        a = sssp(g, 0, method=method, spec=SPEC)
        b = sssp(g, 0, method=method, spec=SPEC)
        assert a.time_ms == b.time_ms
        assert np.array_equal(a.dist, b.dist)
        assert (
            a.counters.totals.total_warp_instructions
            == b.counters.totals.total_warp_instructions
        )
