"""Tests for the convergence-curve analysis."""

import numpy as np
import pytest

from repro.graphs import kronecker, largest_component_vertices
from repro.gpusim import V100
from repro.metrics import ConvergenceCurve, TraceRecorder, convergence_from_trace
from repro.sssp import delta_stepping_cpu, rdbs_sssp

SPEC = V100.scaled_for_workload(1 / 64)


def make_trace(sizes):
    t = TraceRecorder()
    for i, s in enumerate(sizes):
        t.begin_bucket(i, s, float(i), float(i + 1))
        t.end_bucket()
    return t


class TestCurve:
    def test_fractions_monotone(self):
        c = convergence_from_trace(make_trace([10, 30, 60]))
        assert list(c.settled) == [10, 40, 100]
        assert c.total == 100
        f = c.fractions
        assert np.all(np.diff(f) >= 0)
        assert f[-1] == pytest.approx(1.0)

    def test_auc_earlier_is_higher(self):
        early = convergence_from_trace(make_trace([90, 5, 5]))
        late = convergence_from_trace(make_trace([5, 5, 90]))
        assert early.auc > late.auc

    def test_quantile_position(self):
        c = convergence_from_trace(make_trace([50, 30, 20]))
        assert c.quantile_position(0.5) == 0
        assert c.quantile_position(0.8) == 1
        assert c.quantile_position(1.0) == 2
        with pytest.raises(ValueError):
            c.quantile_position(0.0)

    def test_empty_trace(self):
        c = convergence_from_trace(TraceRecorder())
        assert c.total == 0
        assert c.auc == 0.0
        assert c.quantile_position(0.9) == 0


class TestOnRealRuns:
    def test_rdbs_trace_produces_curve(self):
        g = kronecker(9, 8, weights="int", seed=95)
        src = int(largest_component_vertices(g)[0])
        r = rdbs_sssp(g, src, spec=SPEC, record_trace=True)
        c = convergence_from_trace(r.trace)
        assert c.total > 0
        assert 0 < c.auc <= 1.0

    def test_dynamic_delta_converges_in_fewer_buckets(self):
        """The Eq. 1–2 controller (and a wider Δ generally) front-loads
        settlement versus a deliberately narrow fixed Δ."""
        g = kronecker(9, 8, weights="int", seed=96)
        src = int(largest_component_vertices(g)[0])
        dynamic = rdbs_sssp(g, src, spec=SPEC, record_trace=True)
        narrow = delta_stepping_cpu(
            g, src, delta=dynamic.extra["delta0"] / 4, record_trace=True
        )
        c_dyn = convergence_from_trace(dynamic.trace)
        c_nar = convergence_from_trace(narrow.trace)
        assert len(dynamic.trace.buckets) <= len(narrow.trace.buckets)
        assert c_dyn.quantile_position(0.9) <= c_nar.quantile_position(0.9)
