"""Serving-tier chaos engineering (repro.serve.chaos).

The contracts under test are the ones ``BENCH_serve-chaos.json`` and
CI's chaos smoke stand on:

* chaos plans are fully scripted and deterministic: the same
  ``(graph, ServeConfig)`` replays the same failures, hedges and breaker
  transitions; the chaos-off path stays byte-identical (no new counters,
  no checksum work);
* a shard blackout re-routes in-flight batches (hedges > 0) and the
  per-shard breaker walks closed → open → half-open → closed on
  simulated time;
* corrupted LRU entries are detected by checksum and quarantined, never
  served — and corruption damages a *copy*, so oracle-owned landmark
  rows stay pristine;
* the degradation ladder never produces a wrong answer: late requests
  are served degraded-but-certified at the relaxed tolerance or shed
  explicitly, counted and SLO-accounted;
* every shipped chaos plan ends with ``report.ok``.
"""

from __future__ import annotations

import json
from types import SimpleNamespace

import numpy as np
import pytest

from repro.serve import (
    CHAOS_PLANS,
    DistanceFieldLRU,
    ServeConfig,
    chaos_plan_names,
    get_chaos_plan,
    serve_traffic,
)
from repro.serve.chaos import (
    ChaosEngine,
    ChaosPlan,
    ShardBlackout,
    ShardBreaker,
    ShardSlowdown,
)

# fast sessions on the small kron graph, reused across tests
BLACKOUT = ServeConfig(
    num_queries=60, seed=5, p2p_fraction=0.7, tolerance=0.3,
    source_pool=5, cold_fraction=0.3, landmarks=3, shards=2,
    chaos="blackout",
)
LADDER = ServeConfig(
    num_queries=60, seed=5, p2p_fraction=0.7, tolerance=0.05,
    source_pool=5, cold_fraction=0.4, landmarks=3, shards=2,
    chaos="blackout", deadline_ms=0.1, relaxed_tolerance=0.9,
)


def _report():
    return SimpleNamespace(
        hedges=0, shard_failures=0, breaker_opens=0, breaker_half_opens=0,
        breaker_closes=0, corruptions_injected=0,
    )


def _engine(plan: ChaosPlan, shards: int = 2) -> ChaosEngine:
    return ChaosEngine(plan, shards, _report())


# ---------------------------------------------------------------------------
# plans
# ---------------------------------------------------------------------------

class TestPlans:
    def test_registry(self):
        assert chaos_plan_names() == sorted(CHAOS_PLANS)
        for name in chaos_plan_names():
            assert get_chaos_plan(name).name == name

    def test_unknown_plan_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos plan"):
            get_chaos_plan("nope")

    def test_unknown_plan_rejected_at_session_start(self, small_kron):
        from repro.serve.scheduler import _Session

        cfg = ServeConfig(chaos="nope")
        with pytest.raises(ValueError, match="unknown chaos plan"):
            _Session(small_kron, cfg, None, True)

    def test_shipped_windows_are_finite(self):
        for plan in CHAOS_PLANS.values():
            for b in plan.blackouts:
                assert b.start_ms < b.end_ms < float("inf")
            for s in plan.slowdowns:
                assert s.start_ms < s.end_ms and s.factor > 1.0
            assert plan.breaker_reset_ms > 0


# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------

class TestBreaker:
    def test_closed_open_halfopen_closed(self):
        eng = SimpleNamespace(report=_report())
        b = ShardBreaker(0, threshold=1, reset_ms=0.5)
        assert b.state == "closed" and b.can_dispatch(0.0)
        b.on_failure(1.0, eng)
        assert b.state == "open"
        assert not b.can_dispatch(1.2)
        assert b.can_dispatch(1.5)  # reset elapsed
        b.on_dispatch(1.5, eng)
        assert b.state == "half-open"
        b.on_success(1.6, eng)
        assert b.state == "closed"
        r = eng.report
        assert (r.breaker_opens, r.breaker_half_opens, r.breaker_closes) == (1, 1, 1)

    def test_halfopen_failure_reopens(self):
        eng = SimpleNamespace(report=_report())
        b = ShardBreaker(0, threshold=3, reset_ms=0.5)
        b.on_failure(0.0, eng)
        b.on_failure(0.0, eng)
        assert b.state == "closed"  # threshold 3 not reached
        b.on_failure(0.0, eng)
        assert b.state == "open"
        b.on_dispatch(0.6, eng)
        b.on_failure(0.6, eng)  # probe failed: one strike re-opens
        assert b.state == "open"
        assert b.opened_at == 0.6
        assert eng.report.breaker_opens == 2

    def test_success_resets_failure_streak(self):
        eng = SimpleNamespace(report=_report())
        b = ShardBreaker(0, threshold=2, reset_ms=0.5)
        b.on_failure(0.0, eng)
        b.on_success(0.1, eng)
        b.on_failure(0.2, eng)
        assert b.state == "closed"  # streak was broken


# ---------------------------------------------------------------------------
# slowdown-aware service times
# ---------------------------------------------------------------------------

class TestServiceEnd:
    PLAN = ChaosPlan(
        name="t",
        slowdowns=(ShardSlowdown(shard=0, start_ms=1.0, end_ms=2.0, factor=2.0),),
    )

    def test_piecewise_integration(self):
        eng = _engine(self.PLAN)
        assert eng.service_end(0, 0.0, 0.5) == pytest.approx(0.5)  # before
        assert eng.service_end(0, 1.0, 0.2) == pytest.approx(1.4)  # inside: 2x
        assert eng.service_end(0, 0.8, 0.4) == pytest.approx(1.4)  # straddle in
        assert eng.service_end(0, 1.8, 0.5) == pytest.approx(2.4)  # straddle out
        assert eng.service_end(0, 2.5, 0.5) == pytest.approx(3.0)  # after

    def test_other_shard_unaffected(self):
        eng = _engine(self.PLAN)
        assert eng.service_end(1, 1.0, 0.2) == pytest.approx(1.2)


# ---------------------------------------------------------------------------
# hedged dispatch
# ---------------------------------------------------------------------------

class TestDispatch:
    def test_blackout_hedges_to_healthy_shard(self):
        plan = ChaosPlan(
            name="t", blackouts=(ShardBlackout(shard=0, start_ms=1.0, end_ms=2.0),)
        )
        eng = _engine(plan, shards=2)
        busy = [0.0, 0.0]
        shard, end = eng.dispatch(busy, now=0.9, work_ms=0.5)
        # shard 0 (least loaded, lowest index) fails at the blackout edge,
        # the batch hedges onto shard 1 from the failure instant
        assert (shard, end) == (1, pytest.approx(1.5))
        assert busy[0] == pytest.approx(1.0)  # burned work up to the failure
        assert busy[1] == pytest.approx(1.5)
        r = eng.report
        assert r.hedges == 1 and r.shard_failures == 1 and r.breaker_opens == 1

    def test_single_shard_recovers_via_halfopen_probe(self):
        plan = ChaosPlan(
            name="t",
            blackouts=(ShardBlackout(shard=0, start_ms=0.0, end_ms=1.0),),
            breaker_reset_ms=0.4,
        )
        eng = _engine(plan, shards=1)
        busy = [0.0]
        shard, end = eng.dispatch(busy, now=0.0, work_ms=0.2)
        # probes at 0.4 and 0.8 fail inside the blackout; the probe at 1.2
        # succeeds and closes the breaker
        assert (shard, end) == (0, pytest.approx(1.4))
        r = eng.report
        assert r.shard_failures == 3
        assert r.breaker_opens == 3
        assert r.breaker_half_opens == 3
        assert r.breaker_closes == 1
        assert eng.breakers[0].state == "closed"

    def test_dispatch_is_deterministic(self):
        plan = get_chaos_plan("blackout")
        a_busy, b_busy = [0.0, 0.1, 0.2], [0.0, 0.1, 0.2]
        a = _engine(plan, 3).dispatch(a_busy, 0.15, 0.3)
        b = _engine(plan, 3).dispatch(b_busy, 0.15, 0.3)
        assert a == b and a_busy == b_busy


# ---------------------------------------------------------------------------
# cache checksums and quarantine
# ---------------------------------------------------------------------------

class TestCacheChecksums:
    def test_intact_round_trip(self):
        lru = DistanceFieldLRU(1 << 20, checksums=True)
        arr = np.arange(64, dtype=np.float64)
        lru.put(7, arr)
        np.testing.assert_array_equal(lru.get(7), arr)
        assert lru.stats()["corrupted"] == 0

    def test_corruption_detected_and_quarantined(self):
        seen = []
        lru = DistanceFieldLRU(1 << 20, checksums=True,
                               on_corruption=seen.append)
        lru.put(7, np.arange(64, dtype=np.float64))
        assert lru.corrupt(7) is True
        assert lru.get(7) is None  # detected: quarantined, reads as a miss
        assert 7 not in lru
        assert lru.corrupted == 1 and lru.misses == 1
        assert seen == [7]
        assert lru.bytes == 0  # byte ledger stays consistent

    def test_peek_also_quarantines(self):
        lru = DistanceFieldLRU(1 << 20, checksums=True)
        lru.put(3, np.arange(16, dtype=np.float64))
        lru.corrupt(3)
        assert lru.peek(3) is None
        assert lru.corrupted == 1

    def test_corruption_damages_a_copy(self):
        """Resident fields may alias oracle-owned landmark rows; chaos
        must never mutate the shared array in place."""
        lru = DistanceFieldLRU(1 << 20, checksums=True)
        arr = np.arange(64, dtype=np.float64)
        pristine = arr.copy()
        lru.put(7, arr)
        lru.corrupt(7)
        np.testing.assert_array_equal(arr, pristine)

    def test_corrupt_missing_source_is_noop(self):
        lru = DistanceFieldLRU(1 << 20, checksums=True)
        assert lru.corrupt(99) is False

    def test_checksums_off_stats_unchanged(self):
        """The chaos-off cache must expose exactly the legacy stat keys —
        the committed BENCH_serve.json byte-identity depends on it."""
        lru = DistanceFieldLRU(1 << 20)
        lru.put(1, np.arange(8, dtype=np.float64))
        assert set(lru.stats()) == {
            "entries", "bytes", "max_bytes", "hits", "misses",
            "evictions", "rejected",
        }


# ---------------------------------------------------------------------------
# full sessions under chaos
# ---------------------------------------------------------------------------

class TestChaosSessions:
    def test_blackout_hedges_and_breaker_recovers(self, small_kron):
        report = serve_traffic(small_kron, BLACKOUT)
        assert report.ok
        assert report.hedges > 0
        assert report.shard_failures > 0
        assert report.breaker_opens >= 1
        assert report.breaker_half_opens >= 1
        assert report.breaker_closes >= 1  # recovered via a half-open probe

    @pytest.mark.parametrize("plan", sorted(CHAOS_PLANS))
    def test_every_shipped_plan_ends_ok(self, small_kron, plan):
        cfg = ServeConfig(
            num_queries=40, seed=5, p2p_fraction=0.7, tolerance=0.3,
            source_pool=5, cold_fraction=0.3, landmarks=3, shards=2,
            chaos=plan,
        )
        report = serve_traffic(small_kron, cfg)
        assert report.ok, f"plan {plan}: {report.summary()}"

    def test_deadline_ladder_accounts_every_request(self, small_kron):
        report = serve_traffic(small_kron, LADDER)
        assert report.ok  # degraded answers still certified, sheds counted
        assert report.degraded > 0
        assert report.shed > 0
        assert report.slo_violations == report.shed
        # every request is either answered (one latency sample) or shed
        assert len(report.latencies_ms) + report.shed == report.queries

    def test_corruption_detected_never_served(self, small_kron):
        cfg = ServeConfig(
            num_queries=60, seed=5, p2p_fraction=0.8, tolerance=0.3,
            source_pool=4, cold_fraction=0.1, landmarks=3, shards=2,
            chaos="cache-corruption",
        )
        report = serve_traffic(small_kron, cfg)
        assert report.ok  # validation would flag a served poisoned field
        assert report.corruptions_injected > 0
        assert report.cache_stats.get("corrupted", 0) > 0

    def test_oracle_outage_refuses_certified_answers(self, small_kron):
        cfg = ServeConfig(
            num_queries=60, seed=5, p2p_fraction=0.9, tolerance=0.5,
            source_pool=5, cold_fraction=0.4, landmarks=4, shards=2,
            chaos="oracle-outage",
        )
        report = serve_traffic(small_kron, cfg)
        assert report.ok
        assert report.oracle_refusals > 0

    def test_chaos_session_is_deterministic(self, small_kron):
        a = serve_traffic(small_kron, LADDER)
        b = serve_traffic(small_kron, LADDER)
        assert a.counter_dict() == b.counter_dict()
        assert a.makespan_ms == b.makespan_ms

    def test_chaos_off_emits_no_chaos_counters(self, small_kron):
        cfg = ServeConfig(
            num_queries=40, seed=5, source_pool=5, landmarks=3, shards=2
        )
        counters = serve_traffic(small_kron, cfg).counter_dict()
        assert not [k for k in counters if
                    k.startswith(("serve.hedges", "serve.breaker",
                                  "serve.shed", "serve.degraded",
                                  "serve.corruptions", "serve.slo",
                                  "serve.shard_fail", "serve.oracle_ref"))]

    def test_negative_deadline_rejected(self, small_kron):
        with pytest.raises(ValueError, match="deadline_ms"):
            serve_traffic(small_kron, ServeConfig(deadline_ms=-1.0))


# ---------------------------------------------------------------------------
# the committed serve-chaos baseline
# ---------------------------------------------------------------------------

class TestChaosSuite:
    def test_suite_registered(self):
        from repro.bench.suites import suite_names
        from repro.serve.bench import serve_suite_names

        assert "serve-chaos" in serve_suite_names()
        assert "serve-chaos" in suite_names()

    def test_committed_baseline_demonstrates_the_story(self):
        """The committed BENCH_serve-chaos.json must actually show the
        acceptance behaviors: hedged re-routing with a breaker recovery
        (blackout-hedge), ladder degradation + shedding (deadline-ladder),
        detected corruption (cache-corruption) and oracle refusals
        (oracle-outage) — all with zero wrong answers."""
        from pathlib import Path

        from repro.bench.trajectory import load_trajectory

        path = Path(__file__).parent.parent / "BENCH_serve-chaos.json"
        meta, records = load_trajectory(path)
        assert meta["suite"] == "serve-chaos"
        by_name = {r.method.removeprefix("serve:"): r.counters for r in records}

        blackout = by_name["blackout-hedge"]
        assert blackout["serve.hedges"] > 0
        assert blackout["serve.breaker_opens"] >= 1
        assert blackout["serve.breaker_half_opens"] >= 1
        assert blackout["serve.breaker_closes"] >= 1

        ladder = by_name["deadline-ladder"]
        assert ladder["serve.degraded"] > 0
        assert ladder["serve.shed"] > 0
        assert ladder["serve.slo_violations"] == ladder["serve.shed"]

        assert by_name["cache-corruption"]["serve.corruptions_detected"] > 0
        assert by_name["oracle-outage"]["serve.oracle_refusals"] > 0

        for name, counters in by_name.items():
            assert counters["serve.wrong"] == 0, name
            assert counters["serve.faults_escaped"] == 0, name

    def test_committed_baseline_matches_fresh_run(self):
        """The CI chaos gate run in-process: any change that moves one
        deterministic chaos counter must refresh BENCH_serve-chaos.json."""
        from pathlib import Path

        from repro.bench.trajectory import compare_records, load_trajectory
        from repro.serve.bench import run_serve_suite

        path = Path(__file__).parent.parent / "BENCH_serve-chaos.json"
        meta, baseline = load_trajectory(path)
        current = run_serve_suite("serve-chaos")
        report = compare_records(baseline, current, check_wall=False)
        assert report.ok, report.summary()


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

class TestChaosCLI:
    def test_adhoc_chaos_json_format(self, capsys):
        from repro.cli import main

        code = main([
            "serve", "kron:8,8", "--queries", "30", "--pool", "3",
            "--landmarks", "2", "--chaos-plan", "blackout",
            "--deadline-ms", "0.3", "--format", "json",
        ])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["counters"]["serve.queries"] == 30.0
        assert "serve.hedges" in doc["counters"]
        assert "serve.shed" in doc["counters"]

    def test_suite_json_format(self, capsys, monkeypatch):
        from repro.cli import main
        from repro.serve.bench import SERVE_SUITES, ServeCellSpec

        cell = ServeCellSpec(
            name="tiny-chaos", dataset="Amazon",
            config=ServeConfig(num_queries=24, seed=77, source_pool=3,
                               cold_fraction=0.3, landmarks=2, shards=2,
                               chaos="blackout"),
        )
        monkeypatch.setitem(SERVE_SUITES, "serve-tinychaos", (cell,))
        code = main(["serve", "--suite", "tinychaos", "--format", "json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True and doc["suite"] == "serve-tinychaos"
        (session,) = doc["reports"]
        assert session["cell"] == "tiny-chaos"
        assert "serve.hedges" in session["counters"]

    def test_bad_chaos_plan_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["serve", "kron:8,8", "--chaos-plan", "nope"])
