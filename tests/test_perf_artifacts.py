"""Artifact cache (repro.perf.artifacts): correctness and safety.

The cache is only allowed to make things *faster*, never different: a hit
must be element-identical to a cold build, a corrupted entry must be
rejected and rebuilt, and a cached benchmark run must report exactly the
device counters of an uncached one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.perf.artifacts import ArtifactCache, digest_arrays


def _bundle(seed: int = 0) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {
        "row": np.arange(11, dtype=np.int64),
        "vals": rng.random(10),
    }


# ---------------------------------------------------------------------------
# keying / digests
# ---------------------------------------------------------------------------

def test_digest_is_order_independent_but_content_sensitive():
    a = _bundle()
    assert digest_arrays(a) == digest_arrays(dict(reversed(list(a.items()))))
    # any change — name, dtype, shape or a single value — moves the digest
    renamed = {"row2": a["row"], "vals": a["vals"]}
    assert digest_arrays(renamed) != digest_arrays(a)
    retyped = {"row": a["row"].astype(np.int32), "vals": a["vals"]}
    assert digest_arrays(retyped) != digest_arrays(a)
    reshaped = {"row": a["row"], "vals": a["vals"].reshape(2, 5)}
    assert digest_arrays(reshaped) != digest_arrays(a)
    tweaked = {"row": a["row"], "vals": a["vals"].copy()}
    tweaked["vals"][3] += 1e-9
    assert digest_arrays(tweaked) != digest_arrays(a)


def test_key_depends_on_category_and_parts(tmp_path):
    cache = ArtifactCache(tmp_path)
    assert cache.key("pro", (1, "abc")) != cache.key("pro", (2, "abc"))
    assert cache.key("pro", (1, "abc")) != cache.key("surrogate", (1, "abc"))


# ---------------------------------------------------------------------------
# fetch semantics
# ---------------------------------------------------------------------------

def test_fetch_hit_is_identical_to_cold_build(tmp_path):
    cache = ArtifactCache(tmp_path)
    built = []

    def builder():
        built.append(1)
        return _bundle()

    cold, hit0 = cache.fetch("test", ("a",), builder)
    warm, hit1 = cache.fetch("test", ("a",), builder)
    assert (hit0, hit1) == (False, True)
    assert len(built) == 1  # second fetch never called the builder
    assert set(cold) == set(warm)
    for name in cold:
        np.testing.assert_array_equal(cold[name], warm[name])
        assert cold[name].dtype == warm[name].dtype
    assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1


def test_different_parts_do_not_collide(tmp_path):
    cache = ArtifactCache(tmp_path)
    a, _ = cache.fetch("test", ("a",), lambda: {"x": np.arange(3)})
    b, _ = cache.fetch("test", ("b",), lambda: {"x": np.arange(5)})
    assert a["x"].size == 3 and b["x"].size == 5


def test_corrupted_entry_is_rejected_and_rebuilt(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.fetch("test", ("a",), _bundle)
    path = cache.entry_path("test", ("a",))
    assert path.exists()
    # flip payload bytes behind the digest's back
    raw = bytearray(path.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    path.write_bytes(bytes(raw))

    arrays, was_hit = cache.fetch("test", ("a",), _bundle)
    assert was_hit is False  # verification failed -> rebuilt
    assert cache.rejected >= 1 or cache.misses >= 2
    np.testing.assert_array_equal(arrays["row"], _bundle()["row"])
    # the rebuilt entry is healthy again
    _, hit = cache.fetch("test", ("a",), _bundle)
    assert hit is True


def test_truncated_entry_is_quarantined_and_rebuilt(tmp_path):
    """A torn write (truncated .npz) is counted, deleted and recomputed."""
    cache = ArtifactCache(tmp_path)
    cache.fetch("test", ("a",), _bundle)
    path = cache.entry_path("test", ("a",))
    path.write_bytes(path.read_bytes()[:10])
    arrays, hit = cache.fetch("test", ("a",), _bundle)
    assert hit is False
    assert cache.rejected == 1
    np.testing.assert_array_equal(arrays["row"], _bundle()["row"])
    # the junk file was replaced by a healthy rebuilt entry
    _, hit = cache.fetch("test", ("a",), _bundle)
    assert hit is True


def test_truncation_inside_zip_member_is_quarantined(tmp_path):
    """Truncating mid-payload (valid-looking header, torn member) is the
    case that historically raised instead of missing; it must quarantine."""
    cache = ArtifactCache(tmp_path)
    big = {"x": np.arange(50_000, dtype=np.float64)}
    cache.fetch("test", ("big",), lambda: big)
    path = cache.entry_path("test", ("big",))
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) - len(raw) // 3])
    assert cache.load("test", ("big",)) is None
    assert cache.rejected >= 1
    assert not path.exists()  # quarantined, not left to trip again


def test_zlib_error_is_quarantined(tmp_path, monkeypatch):
    """A decompression error mid-read (zlib.error is not an OSError) is a
    quarantine-and-recompute, never a crash."""
    import zlib

    cache = ArtifactCache(tmp_path)
    cache.fetch("test", ("a",), _bundle)
    path = cache.entry_path("test", ("a",))
    assert path.exists()

    def explode(*_args, **_kwargs):
        raise zlib.error("Error -3 while decompressing data")

    monkeypatch.setattr(np, "load", explode)
    assert cache.load("test", ("a",)) is None
    assert cache.rejected == 1
    assert not path.exists()


def test_missing_entry_is_a_plain_miss(tmp_path):
    """A nonexistent entry is a miss, not a quarantine."""
    cache = ArtifactCache(tmp_path)
    assert cache.load("test", ("nope",)) is None
    assert cache.rejected == 0


def test_disabled_cache_always_rebuilds(tmp_path):
    cache = ArtifactCache(tmp_path, enabled=False)
    calls = []

    def builder():
        calls.append(1)
        return _bundle()

    cache.fetch("test", ("a",), builder)
    cache.fetch("test", ("a",), builder)
    assert len(calls) == 2
    assert not list(tmp_path.glob("*.npz"))


def test_eviction_respects_byte_cap(tmp_path):
    cache = ArtifactCache(tmp_path, max_bytes=20_000)
    for i in range(8):
        cache.fetch(
            "blob", (i,), lambda: {"x": np.zeros(1000, dtype=np.float64)}
        )
    st = cache.status()
    assert st["bytes"] <= 20_000
    assert 0 < st["entries"] < 8


def test_clear_and_status(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.fetch("test", ("a",), _bundle)
    cache.fetch("other", ("b",), _bundle)
    st = cache.status()
    assert st["entries"] == 2
    assert st["categories"] == {"other": 1, "test": 1}
    removed = cache.clear()
    assert removed == 2
    assert cache.status()["entries"] == 0


# ---------------------------------------------------------------------------
# cached pipelines are element- and counter-identical
# ---------------------------------------------------------------------------

def test_surrogate_load_hit_equals_cold_build(tmp_path, monkeypatch):
    from repro.perf import artifacts
    from repro.graphs import surrogates

    monkeypatch.setattr(artifacts, "_cache", ArtifactCache(tmp_path))
    cold = surrogates.load("Amazon")
    warm = surrogates.load("Amazon")
    assert artifacts.get_cache().hits >= 1
    np.testing.assert_array_equal(cold.row, warm.row)
    np.testing.assert_array_equal(cold.adj, warm.adj)
    np.testing.assert_array_equal(cold.weights, warm.weights)


def test_pro_cache_hit_equals_cold_build(tmp_path, monkeypatch):
    from repro.perf import artifacts
    from repro.bench.datasets import get_graph
    from repro.reorder import apply_pro

    monkeypatch.setattr(artifacts, "_cache", ArtifactCache(tmp_path))
    g = get_graph("Amazon")
    assert g.num_edges >= 32_768  # large enough to engage the cache
    cold = apply_pro(g, 16.0)
    store = artifacts.get_cache()
    assert store.misses >= 1
    warm = apply_pro(g, 16.0)
    assert store.hits >= 1
    np.testing.assert_array_equal(cold.row, warm.row)
    np.testing.assert_array_equal(cold.adj, warm.adj)
    np.testing.assert_array_equal(cold.weights, warm.weights)
    np.testing.assert_array_equal(cold.heavy_offsets, warm.heavy_offsets)
    np.testing.assert_array_equal(cold.new_to_old, warm.new_to_old)
    assert cold.delta == warm.delta


def test_cached_run_counters_match_uncached(tmp_path, monkeypatch):
    """A warm-cache benchmark cell reports the exact device quantities of a
    cold one — the cache can only change host time, never results."""
    from repro.perf import artifacts
    from repro.bench.suites import _run_cell

    from repro.bench import datasets

    monkeypatch.setattr(artifacts, "_cache", ArtifactCache(tmp_path))
    # drop the in-process memo so the cold cell genuinely rebuilds and the
    # warm cell loads from the .npz entries the cold one stored
    datasets.get_graph.cache_clear()
    datasets._component_cache.cache_clear()
    cold = _run_cell("quick", "Amazon", "bl")
    datasets.get_graph.cache_clear()
    datasets._component_cache.cache_clear()
    warm = _run_cell("quick", "Amazon", "bl")
    assert artifacts.get_cache().hits >= 1
    assert cold.time_ms == warm.time_ms
    assert cold.gteps == warm.gteps
    assert cold.counters == warm.counters


def test_oracle_distances_are_cached(tmp_path, monkeypatch):
    from repro.perf import artifacts
    from repro.sssp.validate import scipy_distances

    monkeypatch.setattr(artifacts, "_cache", ArtifactCache(tmp_path))
    from repro.bench.datasets import get_graph

    g = get_graph("Amazon")
    cold = scipy_distances(g, 0)
    store = artifacts.get_cache()
    misses = store.misses
    warm = scipy_distances(g, 0)
    assert store.hits >= 1 and store.misses == misses
    np.testing.assert_array_equal(cold, warm)


def test_env_no_cache_disables(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    cache = ArtifactCache(tmp_path)
    assert cache.enabled is False


def test_negative_jobs_rejected():
    from repro.perf.parallel import resolve_jobs

    with pytest.raises(ValueError):
        resolve_jobs(-2)
