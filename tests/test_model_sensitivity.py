"""Sensitivity tests: the time model responds to hardware parameters the
way the physics says it must.

These are the simulator's dimensional-analysis checks: doubling bandwidth
halves a memory-bound kernel, doubling SMs halves an issue-bound one,
critical-path-bound kernels ignore both, and platform ratios emerge from
specs alone.
"""

import numpy as np
import pytest
from dataclasses import replace

from repro.gpusim import GPUDevice, V100, grid_stride, thread_per_vertex_edges
from repro.gpusim.counters import KernelCounters
from repro.gpusim.timemodel import kernel_time


def mem_bound() -> KernelCounters:
    return KernelCounters(global_load_transactions=10**7, l1_accesses=10**7)


def issue_bound() -> KernelCounters:
    return KernelCounters(inst_executed_other=10**8)


class TestBandwidth:
    def test_double_bandwidth_halves_memory_bound(self):
        fast = replace(V100, mem_bandwidth_gbps=V100.mem_bandwidth_gbps * 2)
        t_slow = kernel_time(V100, mem_bound(), 0)
        t_fast = kernel_time(fast, mem_bound(), 0)
        assert t_slow == pytest.approx(2 * t_fast)

    def test_bandwidth_irrelevant_when_issue_bound(self):
        fast = replace(V100, mem_bandwidth_gbps=V100.mem_bandwidth_gbps * 10)
        assert kernel_time(V100, issue_bound(), 0) == pytest.approx(
            kernel_time(fast, issue_bound(), 0)
        )


class TestComputeThroughput:
    def test_double_sms_halves_issue_bound(self):
        big = replace(V100, num_sms=V100.num_sms * 2)
        assert kernel_time(V100, issue_bound(), 0) == pytest.approx(
            2 * kernel_time(big, issue_bound(), 0)
        )

    def test_sms_irrelevant_when_memory_bound(self):
        big = replace(V100, num_sms=V100.num_sms * 4)
        assert kernel_time(V100, mem_bound(), 0) == pytest.approx(
            kernel_time(big, mem_bound(), 0)
        )

    def test_clock_scales_critical_path(self):
        fast = replace(V100, clock_ghz=V100.clock_ghz * 2)
        c = KernelCounters()
        assert kernel_time(V100, c, 10**6) == pytest.approx(
            2 * kernel_time(fast, c, 10**6)
        )


class TestCriticalPathBinding:
    def test_hub_kernel_insensitive_to_bandwidth(self):
        """A single-warp dependent chain cannot be bought off with
        bandwidth or SMs — only ADWL-style re-mapping helps."""
        counts = np.array([100_000])  # one hub vertex
        times = {}
        for label, spec in (
            ("base", V100),
            ("fat", replace(V100, num_sms=160, mem_bandwidth_gbps=1800.0)),
        ):
            dev = GPUDevice(spec)
            arr = dev.alloc(np.zeros(100_000))
            with dev.launch("hub") as k:
                k.gather(
                    arr,
                    np.arange(100_000, dtype=np.int64),
                    thread_per_vertex_edges(counts),
                )
            times[label] = dev.time_s - spec.kernel_launch_s
        assert times["fat"] == pytest.approx(times["base"], rel=0.01)

    def test_balanced_kernel_benefits_from_bandwidth(self):
        times = {}
        idx = np.random.default_rng(0).integers(0, 1 << 18, 1 << 18)
        for label, spec in (
            ("base", V100),
            ("fat", replace(V100, mem_bandwidth_gbps=1800.0)),
        ):
            dev = GPUDevice(spec)
            arr = dev.alloc(np.zeros(1 << 18))
            with dev.launch("flat") as k:
                k.gather(arr, idx, grid_stride(idx.size, 8192))
            times[label] = dev.time_s - spec.kernel_launch_s
        assert times["fat"] < times["base"] * 0.75


class TestEmergentPlatformRatio:
    def test_v100_t4_ratio_in_datasheet_band(self):
        """On a memory-bound workload the platform ratio equals the
        bandwidth ratio (900/320 = 2.8) — no tuning anywhere."""
        from repro.gpusim import T4

        t_v = kernel_time(V100, mem_bound(), 0)
        t_t = kernel_time(T4, mem_bound(), 0)
        assert t_t / t_v == pytest.approx(900.0 / 320.0, rel=1e-6)
