"""Property-based tests for the shared segmented-scan primitives."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import (
    segmented_arange,
    segmented_exclusive_cummin,
    serialized_min_outcome,
)


class TestSegmentedArange:
    def test_empty(self):
        assert segmented_arange(np.array([], dtype=np.int64)).size == 0

    def test_zeros(self):
        assert segmented_arange(np.array([0, 0, 0])).size == 0

    @given(st.lists(st.integers(0, 20), max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_matches_reference(self, counts):
        counts = np.array(counts, dtype=np.int64)
        expected = np.concatenate(
            [np.arange(c) for c in counts] or [np.zeros(0, dtype=np.int64)]
        )
        assert np.array_equal(segmented_arange(counts), expected)


def _reference_excl_cummin(values, seg_start):
    out = np.empty(len(values))
    running = np.inf
    for i, (v, s) in enumerate(zip(values, seg_start)):
        if s:
            running = np.inf
        out[i] = running
        running = min(running, v)
    return out


class TestSegmentedExclusiveCummin:
    def test_empty(self):
        out = segmented_exclusive_cummin(np.array([]), np.array([], dtype=bool))
        assert out.size == 0

    def test_single_segment(self):
        vals = np.array([3.0, 1.0, 2.0, 0.5])
        start = np.array([True, False, False, False])
        out = segmented_exclusive_cummin(vals, start)
        assert out[0] == np.inf
        assert list(out[1:]) == [3.0, 1.0, 1.0]

    @given(
        st.lists(
            st.tuples(st.floats(-100, 100), st.booleans()),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_loop_reference(self, items):
        vals = np.array([v for v, _ in items])
        start = np.array([s for _, s in items])
        start[0] = True  # first element always begins a segment
        got = segmented_exclusive_cummin(vals, start)
        ref = _reference_excl_cummin(vals, start)
        assert np.array_equal(got, ref)


def _reference_atomic_min(current, idx, vals):
    """Sequential atomicMin semantics in program order."""
    cur = current.copy()
    old = np.empty(len(idx))
    updated = np.zeros(len(idx), dtype=bool)
    for i, (a, v) in enumerate(zip(idx, vals)):
        old[i] = cur[a]
        if v < cur[a]:
            cur[a] = v
            updated[i] = True
    return cur, old, updated


class TestSerializedMinOutcome:
    def test_empty(self):
        cur = np.array([1.0, 2.0])
        old, upd = serialized_min_outcome(cur, np.array([], dtype=np.int64), np.array([]))
        assert old.size == 0 and upd.size == 0

    def test_empty_leaves_current_untouched(self):
        cur = np.array([1.0, 2.0])
        serialized_min_outcome(cur, np.array([], dtype=np.int64), np.array([]))
        assert list(cur) == [1.0, 2.0]

    def test_all_same_address_descending(self):
        """Every op hits one cell; each strictly-lower value wins in order."""
        cur = np.array([np.inf])
        idx = np.zeros(5, dtype=np.int64)
        vals = np.array([9.0, 7.0, 5.0, 3.0, 1.0])
        old, upd = serialized_min_outcome(cur, idx, vals)
        assert list(old) == [np.inf, 9.0, 7.0, 5.0, 3.0]
        assert upd.all()
        assert cur[0] == 1.0

    def test_all_same_address_ascending_only_first_wins(self):
        cur = np.array([np.inf])
        idx = np.zeros(4, dtype=np.int64)
        vals = np.array([1.0, 2.0, 3.0, 4.0])
        old, upd = serialized_min_outcome(cur, idx, vals)
        assert list(upd) == [True, False, False, False]
        assert list(old) == [np.inf, 1.0, 1.0, 1.0]
        assert cur[0] == 1.0

    def test_all_same_address_equal_values_never_update(self):
        """atomicMin with v == current is a no-op: no spurious 'updated'."""
        cur = np.array([5.0])
        idx = np.zeros(3, dtype=np.int64)
        vals = np.array([5.0, 5.0, 5.0])
        old, upd = serialized_min_outcome(cur, idx, vals)
        assert not upd.any()
        assert list(old) == [5.0, 5.0, 5.0]
        assert cur[0] == 5.0

    def test_duplicates_serialize_in_program_order(self):
        cur = np.array([10.0])
        idx = np.array([0, 0, 0])
        vals = np.array([5.0, 7.0, 3.0])
        old, upd = serialized_min_outcome(cur, idx, vals)
        assert list(old) == [10.0, 5.0, 5.0]
        assert list(upd) == [True, False, True]
        assert cur[0] == 3.0

    @given(
        n_cells=st.integers(1, 8),
        ops=st.lists(
            st.tuples(st.integers(0, 7), st.floats(0, 50)), max_size=60
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_sequential_reference(self, n_cells, ops):
        rng = np.random.default_rng(0)
        cur1 = rng.uniform(10, 40, n_cells)
        cur2 = cur1.copy()
        idx = np.array([a % n_cells for a, _ in ops], dtype=np.int64)
        vals = np.array([v for _, v in ops])
        ref_cur, ref_old, ref_upd = _reference_atomic_min(cur1, idx, vals)
        old, upd = serialized_min_outcome(cur2, idx, vals)
        assert np.allclose(cur2, ref_cur)
        assert np.allclose(old, ref_old)
        assert np.array_equal(upd, ref_upd)
