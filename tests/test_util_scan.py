"""Property-based tests for the shared segmented-scan primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import (
    segmented_arange,
    segmented_exclusive_cummin,
    serialized_min_outcome,
)
from repro.util.scan import (
    _bincount_range,
    distinct_count,
    multisplit_order,
    sorted_unique_ints,
    stable_sort_with_order,
)


class TestStableSortWithOrder:
    """The composite-key fast path must equal NumPy's stable argsort."""

    def test_empty(self):
        keys, order = stable_sort_with_order(np.zeros(0, dtype=np.int64))
        assert keys.size == 0 and order.size == 0

    def test_single_key(self):
        keys, order = stable_sort_with_order(np.array([7], dtype=np.int64))
        assert list(keys) == [7] and list(order) == [0]

    def test_negative_keys_fall_back_correctly(self):
        keys = np.array([3, -1, 2, -5, 0], dtype=np.int64)
        skeys, order = stable_sort_with_order(keys)
        ref = np.argsort(keys, kind="stable")
        assert np.array_equal(order, ref)
        assert np.array_equal(skeys, keys[ref])

    def test_all_equal_keys_preserve_position_order(self):
        """Stability on ties: the order must be the identity."""
        for n in (4, 1000):  # fallback path and packed path
            keys = np.full(n, 5, dtype=np.int64)
            skeys, order = stable_sort_with_order(keys)
            assert np.array_equal(order, np.arange(n))
            assert (skeys == 5).all()

    @given(
        st.lists(st.integers(0, 10), max_size=50),
        st.integers(0, 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_stable_argsort(self, vals, scale):
        # scale=1 repeats the keys past the n>512 packed-sort threshold
        keys = np.array(vals * (1 if not scale else 200), dtype=np.int64)
        ref = np.argsort(keys, kind="stable")
        skeys, order = stable_sort_with_order(keys)
        assert np.array_equal(order, ref)
        assert np.array_equal(skeys, keys[ref])

    def test_huge_keys_overflow_guard(self):
        """Keys too large to pack take the argsort fallback, correctly."""
        big = 1 << 61
        keys = np.array([big, 0, big - 1] * 300, dtype=np.int64)
        skeys, order = stable_sort_with_order(keys)
        ref = np.argsort(keys, kind="stable")
        assert np.array_equal(order, ref)


class TestDedupPrimitives:
    """distinct_count / sorted_unique_ints against the np.unique oracle."""

    def test_empty(self):
        empty = np.zeros(0, dtype=np.int64)
        assert distinct_count(empty) == 0
        assert sorted_unique_ints(empty).size == 0

    def test_single_value(self):
        one = np.array([42], dtype=np.int64)
        assert distinct_count(one) == 1
        assert list(sorted_unique_ints(one)) == [42]

    def test_all_equal(self):
        same = np.full(64, 9, dtype=np.int64)
        assert distinct_count(same) == 1
        assert list(sorted_unique_ints(same)) == [9]

    def test_wide_range_takes_unique_fallback(self):
        vals = np.array([0, 10**12, 5, 10**12], dtype=np.int64)
        assert _bincount_range(vals) is None
        assert distinct_count(vals) == 3
        assert np.array_equal(sorted_unique_ints(vals), np.unique(vals))

    def test_shifted_range(self):
        """lo > 0: the counting pass shifts, results stay absolute."""
        vals = np.array([1000, 1002, 1000, 1005], dtype=np.int64)
        assert _bincount_range(vals) == (1000, 1005)
        assert distinct_count(vals) == 3
        assert list(sorted_unique_ints(vals)) == [1000, 1002, 1005]

    @given(st.lists(st.integers(0, 200), min_size=1, max_size=80))
    @settings(max_examples=80, deadline=None)
    def test_matches_np_unique(self, vals):
        arr = np.array(vals, dtype=np.int64)
        oracle = np.unique(arr)
        assert distinct_count(arr) == oracle.size
        got = sorted_unique_ints(arr)
        assert got.dtype == np.int64
        assert np.array_equal(got, oracle)


class TestMultisplitOrder:
    """The host reference for the device warp-ballot multisplit."""

    def test_empty(self):
        order, offsets = multisplit_order(np.zeros(0, dtype=np.int64), 3)
        assert order.size == 0
        assert list(offsets) == [0, 0, 0, 0]

    def test_single_key(self):
        order, offsets = multisplit_order(np.array([1]), 2)
        assert list(order) == [0]
        assert list(offsets) == [0, 0, 1]

    def test_all_equal_keys_single_bucket(self):
        order, offsets = multisplit_order(np.zeros(5, dtype=np.int64), 1)
        assert np.array_equal(order, np.arange(5))
        assert list(offsets) == [0, 5]

    def test_num_buckets_below_one_rejected(self):
        with pytest.raises(ValueError, match="num_buckets"):
            multisplit_order(np.array([0]), 0)

    def test_negative_key_rejected(self):
        with pytest.raises(ValueError):
            multisplit_order(np.array([0, -1]), 2)

    def test_out_of_range_key_rejected(self):
        with pytest.raises(ValueError, match="must lie in"):
            multisplit_order(np.array([0, 1, 2]), 2)

    @given(
        st.integers(1, 6).flatmap(
            lambda b: st.tuples(
                st.just(b), st.lists(st.integers(0, b - 1), max_size=60)
            )
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_stable_argsort_and_bincount(self, case):
        num_buckets, keys = case
        keys = np.array(keys, dtype=np.int64)
        order, offsets = multisplit_order(keys, num_buckets)
        assert np.array_equal(order, np.argsort(keys, kind="stable"))
        counts = np.bincount(keys, minlength=num_buckets)
        assert np.array_equal(np.diff(offsets), counts)
        assert offsets[0] == 0 and offsets[-1] == keys.size
        # each bucket's slice carries exactly its keys, in original order
        for b in range(num_buckets):
            members = order[offsets[b]:offsets[b + 1]]
            assert (keys[members] == b).all()
            assert np.array_equal(members, np.sort(members))


class TestSegmentedArange:
    def test_empty(self):
        assert segmented_arange(np.array([], dtype=np.int64)).size == 0

    def test_zeros(self):
        assert segmented_arange(np.array([0, 0, 0])).size == 0

    @given(st.lists(st.integers(0, 20), max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_matches_reference(self, counts):
        counts = np.array(counts, dtype=np.int64)
        expected = np.concatenate(
            [np.arange(c) for c in counts] or [np.zeros(0, dtype=np.int64)]
        )
        assert np.array_equal(segmented_arange(counts), expected)


def _reference_excl_cummin(values, seg_start):
    out = np.empty(len(values))
    running = np.inf
    for i, (v, s) in enumerate(zip(values, seg_start)):
        if s:
            running = np.inf
        out[i] = running
        running = min(running, v)
    return out


class TestSegmentedExclusiveCummin:
    def test_empty(self):
        out = segmented_exclusive_cummin(np.array([]), np.array([], dtype=bool))
        assert out.size == 0

    def test_single_segment(self):
        vals = np.array([3.0, 1.0, 2.0, 0.5])
        start = np.array([True, False, False, False])
        out = segmented_exclusive_cummin(vals, start)
        assert out[0] == np.inf
        assert list(out[1:]) == [3.0, 1.0, 1.0]

    @given(
        st.lists(
            st.tuples(st.floats(-100, 100), st.booleans()),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_loop_reference(self, items):
        vals = np.array([v for v, _ in items])
        start = np.array([s for _, s in items])
        start[0] = True  # first element always begins a segment
        got = segmented_exclusive_cummin(vals, start)
        ref = _reference_excl_cummin(vals, start)
        assert np.array_equal(got, ref)


def _reference_atomic_min(current, idx, vals):
    """Sequential atomicMin semantics in program order."""
    cur = current.copy()
    old = np.empty(len(idx))
    updated = np.zeros(len(idx), dtype=bool)
    for i, (a, v) in enumerate(zip(idx, vals)):
        old[i] = cur[a]
        if v < cur[a]:
            cur[a] = v
            updated[i] = True
    return cur, old, updated


class TestSerializedMinOutcome:
    def test_empty(self):
        cur = np.array([1.0, 2.0])
        old, upd = serialized_min_outcome(cur, np.array([], dtype=np.int64), np.array([]))
        assert old.size == 0 and upd.size == 0

    def test_empty_leaves_current_untouched(self):
        cur = np.array([1.0, 2.0])
        serialized_min_outcome(cur, np.array([], dtype=np.int64), np.array([]))
        assert list(cur) == [1.0, 2.0]

    def test_all_same_address_descending(self):
        """Every op hits one cell; each strictly-lower value wins in order."""
        cur = np.array([np.inf])
        idx = np.zeros(5, dtype=np.int64)
        vals = np.array([9.0, 7.0, 5.0, 3.0, 1.0])
        old, upd = serialized_min_outcome(cur, idx, vals)
        assert list(old) == [np.inf, 9.0, 7.0, 5.0, 3.0]
        assert upd.all()
        assert cur[0] == 1.0

    def test_all_same_address_ascending_only_first_wins(self):
        cur = np.array([np.inf])
        idx = np.zeros(4, dtype=np.int64)
        vals = np.array([1.0, 2.0, 3.0, 4.0])
        old, upd = serialized_min_outcome(cur, idx, vals)
        assert list(upd) == [True, False, False, False]
        assert list(old) == [np.inf, 1.0, 1.0, 1.0]
        assert cur[0] == 1.0

    def test_all_same_address_equal_values_never_update(self):
        """atomicMin with v == current is a no-op: no spurious 'updated'."""
        cur = np.array([5.0])
        idx = np.zeros(3, dtype=np.int64)
        vals = np.array([5.0, 5.0, 5.0])
        old, upd = serialized_min_outcome(cur, idx, vals)
        assert not upd.any()
        assert list(old) == [5.0, 5.0, 5.0]
        assert cur[0] == 5.0

    def test_duplicates_serialize_in_program_order(self):
        cur = np.array([10.0])
        idx = np.array([0, 0, 0])
        vals = np.array([5.0, 7.0, 3.0])
        old, upd = serialized_min_outcome(cur, idx, vals)
        assert list(old) == [10.0, 5.0, 5.0]
        assert list(upd) == [True, False, True]
        assert cur[0] == 3.0

    @given(
        n_cells=st.integers(1, 8),
        ops=st.lists(
            st.tuples(st.integers(0, 7), st.floats(0, 50)), max_size=60
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_sequential_reference(self, n_cells, ops):
        rng = np.random.default_rng(0)
        cur1 = rng.uniform(10, 40, n_cells)
        cur2 = cur1.copy()
        idx = np.array([a % n_cells for a, _ in ops], dtype=np.int64)
        vals = np.array([v for _, v in ops])
        ref_cur, ref_old, ref_upd = _reference_atomic_min(cur1, idx, vals)
        old, upd = serialized_min_outcome(cur2, idx, vals)
        assert np.allclose(cur2, ref_cur)
        assert np.allclose(old, ref_old)
        assert np.array_equal(upd, ref_upd)
